//! The Aalo baseline (Chowdhury & Stoica, SIGCOMM'15), as the Saath
//! paper models it (§2.2).
//!
//! Aalo's global coordinator only decides *queue membership*: a CoFlow
//! sits in the queue whose span contains its **total bytes sent**. The
//! ports then act independently: each enumerates flows from the highest
//! to the lowest priority queue and serves same-queue flows FIFO (by
//! CoFlow arrival). There is no coordination of a CoFlow's flows across
//! ports — which is precisely the *spatial dimension* Saath exploits,
//! and the source of Aalo's out-of-sync behaviour (§2.3).
//!
//! The implementation walks every ready flow in
//! `(queue, CoFlow arrival, CoFlow id, flow id)` order and hands each
//! the remaining capacity of its two ports ([`greedy_fill_into`]). That is
//! the fluid equivalent of independent per-port strict-priority FIFO
//! with sender/receiver feasibility — the same model coflowsim uses.

use crate::config::QueueConfig;
use crate::timing::SchedTimings;
use crate::view::{ClusterView, CoflowScheduler, Schedule};
use saath_fabric::{greedy_fill_into, FlowEndpoints, PortBank};
use saath_simcore::{CoflowId, FastHashMap, FastHashSet, Time};
use saath_telemetry::MechCounters;
use std::collections::BTreeMap;
use std::time::Instant;

/// A booked CoFlow's ordering state: its current FIFO key plus a
/// round-stamp for departure detection.
#[derive(Clone, Copy)]
struct AaloMeta {
    /// Queue at the last (re)booking.
    q: usize,
    /// Arrival, cached so a departed CoFlow's bucket key can still be
    /// reconstructed after it leaves the view.
    arrival: Time,
    /// Whether a bucket exists (CoFlows with no ready unfinished flow
    /// are tracked but not booked).
    booked: bool,
    /// Last round (epoch) this CoFlow appeared in the view.
    seen: u64,
}

/// The Aalo scheduler.
pub struct Aalo {
    queues: QueueConfig,
    /// Weighted inter-queue sharing, as deployed Aalo (and coflowsim)
    /// does: queue `q` receives a bandwidth share proportional to
    /// `E^{-q}`, so lower-priority CoFlows keep trickling instead of
    /// being starved by strict priority. `None` = strict priority (the
    /// simpler model the Saath paper's §2.2 text describes).
    weighted_queues: Option<u64>,
    /// Maintain the `(queue, arrival, CoFlow, flow)` FIFO order
    /// incrementally across rounds instead of rebuilding and re-sorting
    /// every ready flow every round: CoFlows the [`ClusterView::changed`]
    /// hint excludes keep their booked flow list untouched. Identical
    /// output either way — the full re-sort stays the oracle, asserted
    /// in debug builds every round. On by default.
    pub incremental_order: bool,
    /// Per-round overhead samples (Table 2 comparison column).
    pub timings: SchedTimings,
    // Per-round buffers, recycled so the hot path never allocates.
    order: Vec<((usize, Time, u32, u32), FlowEndpoints)>,
    eps: Vec<FlowEndpoints>,
    rates: Vec<saath_simcore::Rate>,
    present: Vec<[bool; 16]>,
    budget: Vec<u64>,
    /// Incremental order book: `(queue, arrival, CoFlow id)` → that
    /// CoFlow's ready unfinished flows, sorted by flow id. Walking the
    /// map emits exactly the historical full-sort order, because the
    /// map key is the sort key's CoFlow-level prefix and the per-CoFlow
    /// lists carry the flow-id suffix.
    book: BTreeMap<(usize, Time, u32), Vec<FlowEndpoints>>,
    /// Booked CoFlows' current keys + departure stamps.
    meta: FastHashMap<CoflowId, AaloMeta>,
    /// Round counter driving `AaloMeta::seen`.
    epoch: u64,
    /// Scratch: this round's `changed` hint as a set.
    changed_set: FastHashSet<CoflowId>,
    /// Scratch: CoFlows that left the view this round.
    gone: Vec<CoflowId>,
    // Telemetry-only state (empty / all-zero in feature-off builds):
    // last observed queue per CoFlow, per-queue occupancy, counters.
    last_queue: FastHashMap<CoflowId, usize>,
    live: FastHashSet<CoflowId>,
    occupancy: Vec<usize>,
    /// Mechanism counters (queue transitions, FIFO sort comparisons,
    /// …). Only maintained in `telemetry`-feature builds.
    pub mech: MechCounters,
}

impl Aalo {
    /// Aalo with the given queue structure (Saath shares it) and the
    /// deployed system's weighted inter-queue sharing.
    pub fn new(queues: QueueConfig) -> Aalo {
        let growth = queues.growth;
        Aalo {
            queues,
            weighted_queues: Some(growth),
            incremental_order: true,
            timings: SchedTimings::default(),
            order: Vec::new(),
            eps: Vec::new(),
            rates: Vec::new(),
            present: Vec::new(),
            budget: Vec::new(),
            book: BTreeMap::new(),
            meta: FastHashMap::default(),
            epoch: 0,
            changed_set: FastHashSet::default(),
            gone: Vec::new(),
            last_queue: FastHashMap::default(),
            live: FastHashSet::default(),
            occupancy: Vec::new(),
            mech: MechCounters::default(),
        }
    }

    /// Aalo with strict priority across queues instead of weighted
    /// sharing — the simplified model in the Saath paper's text.
    pub fn strict_priority(queues: QueueConfig) -> Aalo {
        Aalo {
            weighted_queues: None,
            ..Aalo::new(queues)
        }
    }

    /// Aalo with the paper's default parameters.
    pub fn with_defaults() -> Aalo {
        Aalo::new(QueueConfig::default())
    }
}

impl CoflowScheduler for Aalo {
    fn name(&self) -> &'static str {
        "aalo"
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_total = Instant::now();

        // (queue, arrival, coflow id, flow id) → endpoints, for every
        // ready unfinished flow.
        self.order.clear();
        if saath_telemetry::enabled() {
            self.occupancy.clear();
            self.occupancy.resize(self.queues.num_queues, 0);
            self.live.clear();
            self.live.extend(view.coflows.iter().map(|c| c.id));
            let live = &self.live;
            self.last_queue.retain(|id, _| live.contains(id));
        }
        if self.incremental_order {
            // Re-book only the CoFlows the `changed` hint names (no
            // hint ⇒ everything changed ⇒ every CoFlow re-books, still
            // through the book so its state never goes stale).
            self.epoch += 1;
            let epoch = self.epoch;
            self.changed_set.clear();
            if let Some(changed) = view.changed {
                self.changed_set.extend(changed.iter().copied());
            }
            let mut rekeys = 0u64;
            for c in view.coflows {
                let unchanged = view.changed.is_some() && !self.changed_set.contains(&c.id);
                let q = match self.meta.get_mut(&c.id) {
                    Some(m) if unchanged => {
                        m.seen = epoch;
                        debug_assert_eq!(
                            m.q,
                            self.queues.queue_for_total(c.total_sent()),
                            "cached queue diverged for a CoFlow outside the changed hint"
                        );
                        m.q
                    }
                    prev => {
                        let q = self.queues.queue_for_total(c.total_sent());
                        // Re-book: reclaim the old bucket's buffer (if
                        // any), refill it with the fresh ready-flow
                        // list, re-insert under the new key.
                        let old = prev.filter(|m| m.booked).map(|m| (m.q, m.arrival, c.id.0));
                        let mut flows = old
                            .and_then(|key| self.book.remove(&key))
                            .unwrap_or_default();
                        flows.clear();
                        flows.extend(
                            c.unfinished()
                                .filter(|f| f.ready)
                                .map(|f| f.endpoints(view.num_nodes)),
                        );
                        flows.sort_unstable_by_key(|e| e.flow.0);
                        let booked = !flows.is_empty();
                        if booked {
                            self.book.insert((q, c.arrival, c.id.0), flows);
                        }
                        self.meta.insert(
                            c.id,
                            AaloMeta {
                                q,
                                arrival: c.arrival,
                                booked,
                                seen: epoch,
                            },
                        );
                        rekeys += 1;
                        q
                    }
                };
                if saath_telemetry::enabled() {
                    self.occupancy[q] += 1;
                    if let Some(prev) = self.last_queue.insert(c.id, q) {
                        if prev != q {
                            self.mech.queue_transitions += 1;
                        }
                    }
                }
            }
            // Departures: booked CoFlows that did not appear this round.
            self.gone.clear();
            self.gone.extend(
                self.meta
                    .iter()
                    .filter(|(_, m)| m.seen != epoch)
                    .map(|(id, _)| *id),
            );
            for gi in 0..self.gone.len() {
                let id = self.gone[gi];
                let m = self.meta.remove(&id).expect("departed CoFlow unbooked");
                if m.booked {
                    self.book.remove(&(m.q, m.arrival, id.0));
                }
            }
            // Emit: the map walk is the sort.
            for (&(q, arrival, cid), flows) in &self.book {
                self.order
                    .extend(flows.iter().map(|e| ((q, arrival, cid, e.flow.0), *e)));
            }
            if saath_telemetry::enabled() {
                self.mech.order_rekeys += rekeys;
                self.mech.order_resorts_avoided += 1;
                // One tree removal + insertion per rekey, ~log2(n)
                // comparisons each (deterministic estimate; see Saath).
                let lg = (usize::BITS - view.coflows.len().leading_zeros()) as u64;
                self.mech.lcof_comparisons += rekeys * 2 * lg;
            }
            // The full rebuild + re-sort stays the executable
            // specification, proven against every debug round.
            #[cfg(debug_assertions)]
            {
                let mut oracle: Vec<((usize, Time, u32, u32), FlowEndpoints)> = Vec::new();
                for c in view.coflows {
                    let q = self.queues.queue_for_total(c.total_sent());
                    oracle.extend(
                        c.unfinished()
                            .filter(|f| f.ready)
                            .map(|f| ((q, c.arrival, c.id.0, f.id.0), f.endpoints(view.num_nodes))),
                    );
                }
                oracle.sort_by_key(|(key, _)| *key);
                assert_eq!(
                    self.order, oracle,
                    "incremental FIFO order diverged from the full re-sort oracle"
                );
            }
        } else {
            for c in view.coflows {
                let q = self.queues.queue_for_total(c.total_sent());
                if saath_telemetry::enabled() {
                    self.occupancy[q] += 1;
                    // Aalo keeps no queue state; reconstruct transitions
                    // from the previous round's assignment.
                    if let Some(prev) = self.last_queue.insert(c.id, q) {
                        if prev != q {
                            self.mech.queue_transitions += 1;
                        }
                    }
                }
                self.order.extend(
                    c.unfinished()
                        .filter(|f| f.ready)
                        .map(|f| ((q, c.arrival, c.id.0, f.id.0), f.endpoints(view.num_nodes))),
                );
            }
            if saath_telemetry::enabled() {
                // Same stable sort through a counting comparator, so the
                // FIFO ordering work is comparable against Saath's LCoF.
                let mut cmps = 0u64;
                self.order.sort_by(|(a, _), (b, _)| {
                    cmps += 1;
                    a.cmp(b)
                });
                self.mech.lcof_comparisons += cmps;
            } else {
                self.order.sort_by_key(|(key, _)| *key);
            }
        }
        self.eps.clear();
        self.eps.extend(self.order.iter().map(|(_, e)| *e));

        match self.weighted_queues {
            None => greedy_fill_into(bank, &self.eps, &mut self.rates),
            Some(growth) => {
                // Per-port weighted fair queuing across backlogged
                // queues (weight E^{-q}), FIFO within a queue, then a
                // work-conserving second pass for the leftovers.
                let np = bank.num_ports();
                let k = self.queues.num_queues;
                // Which queues are backlogged at each port.
                let present = &mut self.present;
                present.clear();
                present.resize(np, [false; 16]);
                for ((q, ..), e) in &self.order {
                    present[e.src.index()][(*q).min(15)] = true;
                    present[e.dst.index()][(*q).min(15)] = true;
                }
                let weight = |q: usize| (growth as f64).powi(-(q as i32));
                // Per-port per-queue budgets.
                let budget = &mut self.budget;
                budget.clear();
                budget.resize(np * k, 0u64);
                for p in 0..np {
                    let total_w: f64 = (0..k).filter(|&q| present[p][q.min(15)]).map(weight).sum();
                    if total_w <= 0.0 {
                        continue;
                    }
                    let cap = bank.remaining(saath_simcore::PortId(p as u32)).as_u64();
                    for q in 0..k {
                        if present[p][q.min(15)] {
                            budget[p * k + q] = (cap as f64 * weight(q) / total_w) as u64;
                        }
                    }
                }
                // Pass 1: FIFO within each queue against the budgets.
                let rates = &mut self.rates;
                rates.clear();
                rates.resize(self.eps.len(), saath_simcore::Rate::ZERO);
                for (i, ((q, ..), e)) in self.order.iter().enumerate() {
                    let (s, d) = (e.src.index(), e.dst.index());
                    let r = budget[s * k + q]
                        .min(budget[d * k + q])
                        .min(bank.remaining(e.src).as_u64())
                        .min(bank.remaining(e.dst).as_u64());
                    if r > 0 {
                        budget[s * k + q] -= r;
                        budget[d * k + q] -= r;
                        bank.allocate(e.src, saath_simcore::Rate(r));
                        bank.allocate(e.dst, saath_simcore::Rate(r));
                        rates[i] = saath_simcore::Rate(r);
                    }
                }
                // Pass 2: hand out what the budgets stranded, same order.
                for (i, e) in self.eps.iter().enumerate() {
                    let r = bank.remaining(e.src).min(bank.remaining(e.dst));
                    if !r.is_zero() {
                        bank.allocate(e.src, r);
                        bank.allocate(e.dst, r);
                        rates[i] += r;
                    }
                }
            }
        };
        for (e, &r) in self.eps.iter().zip(self.rates.iter()) {
            if !r.is_zero() {
                out.set(e.flow, r);
            }
        }

        self.timings.record_total(t_total.elapsed());
        self.timings.active_coflows.push(view.coflows.len());
    }

    fn mech_counters(&self) -> Option<&MechCounters> {
        Some(&self.mech)
    }

    fn queue_occupancy(&self) -> Option<&[usize]> {
        if saath_telemetry::enabled() {
            Some(&self.occupancy)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{CoflowView, FlowView};
    use saath_simcore::{Bytes, CoflowId, FlowId, NodeId, Rate, Time};

    const GBPS: Rate = Rate::gbps(1);

    fn fv(id: u32, src: u32, dst: u32, sent: u64) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            sent: Bytes(sent),
            ready: true,
            finished: false,
            oracle_size: None,
        }
    }

    fn cv(id: u32, arrival_ms: u64, flows: Vec<FlowView>) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::from_millis(arrival_ms),
            flows,
            restarted: false,
        }
    }

    fn run(coflows: &[CoflowView], num_nodes: usize) -> Schedule {
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes,
            coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(num_nodes, GBPS);
        let mut out = Schedule::default();
        Aalo::with_defaults().compute(&view, &mut bank, &mut out);
        out
    }

    /// The Fig 1 pathology: Aalo schedules C2's free-port flows early
    /// (out of sync), blocking nothing useful.
    #[test]
    fn fig1_out_of_sync_behaviour() {
        let coflows = vec![
            cv(1, 0, vec![fv(10, 0, 3, 0)]),
            cv(
                2,
                1,
                vec![fv(20, 0, 4, 0), fv(21, 1, 5, 0), fv(22, 2, 6, 0)],
            ),
            cv(3, 2, vec![fv(30, 1, 7, 0)]),
            cv(4, 3, vec![fv(40, 2, 8, 0)]),
        ];
        let out = run(&coflows, 9);
        // FIFO per port: C1 wins sender 0; C2 (earlier than C3/C4) wins
        // senders 1 and 2 — its flows are now out of sync with flow 20,
        // and C3/C4 are blocked.
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(21)), GBPS);
        assert_eq!(out.rate_of(FlowId(22)), GBPS);
        assert_eq!(out.rate_of(FlowId(30)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(40)), Rate::ZERO);
    }

    /// Queue priority: a CoFlow that has sent a lot sits in a lower
    /// queue and mostly loses its port to a fresh CoFlow, regardless of
    /// arrival order. Under the deployed system's weighted sharing the
    /// old CoFlow keeps a trickle (E:1); under the strict-priority
    /// model it gets nothing.
    #[test]
    fn total_bytes_demotion() {
        let coflows = vec![
            cv(0, 0, vec![fv(0, 0, 2, 50_000_000)]), // 50 MB sent → Q1
            cv(1, 9, vec![fv(10, 0, 3, 0)]),         // fresh → Q0
        ];
        let out = run(&coflows, 4);
        // Weighted default: Q0 gets E/(E+1) = 10/11 of the port, Q1 the
        // rest (work conservation can add nothing — the port is full).
        let hi = out.rate_of(FlowId(10)).as_u64();
        let lo = out.rate_of(FlowId(0)).as_u64();
        assert!(hi > 8 * lo, "Q0 flow should dominate: {hi} vs {lo}");
        assert!(lo > 0, "weighted sharing keeps Q1 trickling");
        assert!(hi + lo <= GBPS.as_u64());
        assert!(hi + lo >= GBPS.as_u64() - 2, "port should be fully used");

        // Strict-priority variant: winner takes all.
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes: 4,
            coflows: &coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(4, GBPS);
        let mut out = Schedule::default();
        Aalo::strict_priority(crate::config::QueueConfig::default())
            .compute(&view, &mut bank, &mut out);
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Within a queue, FIFO by arrival.
    #[test]
    fn fifo_within_queue() {
        let coflows = vec![
            cv(0, 5, vec![fv(0, 0, 2, 0)]),
            cv(1, 3, vec![fv(10, 0, 3, 0)]), // earlier arrival wins
        ];
        let out = run(&coflows, 4);
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Unready flows are not scheduled.
    #[test]
    fn unready_flows_skipped() {
        let mut c = cv(0, 0, vec![fv(0, 0, 2, 0)]);
        c.flows[0].ready = false;
        let out = run(&[c], 4);
        assert_eq!(out.rate_of(FlowId(0)), Rate::ZERO);
    }

    /// Satellite for the incremental FIFO book: 200 rounds of random
    /// churn (arrivals, total-bytes growth across queue thresholds,
    /// finishes, readiness flips, departures) driven through two
    /// schedulers — the incremental one fed exact `changed` hints, the
    /// legacy full-re-sort one fed `changed: None` — must produce
    /// identical schedules every round, for both the weighted-sharing
    /// and strict-priority variants. Debug builds additionally exercise
    /// the in-scheduler full-re-sort oracle on every hinted round.
    #[test]
    fn incremental_order_matches_full_resort_under_churn() {
        use rand::{Rng, SeedableRng};
        for strict in [false, true] {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xaa10 + strict as u64);
            let queues = crate::config::QueueConfig::default;
            let (mut inc, mut full) = if strict {
                (
                    Aalo::strict_priority(queues()),
                    Aalo::strict_priority(queues()),
                )
            } else {
                (Aalo::new(queues()), Aalo::new(queues()))
            };
            full.incremental_order = false;
            let num_nodes = 12usize;
            let mut coflows: Vec<CoflowView> = Vec::new();
            let mut next_cf = 0u32;
            let mut next_flow = 0u32;
            let mut now = Time::ZERO;
            for round in 0..200 {
                let mut changed: Vec<CoflowId> = Vec::new();
                // Arrivals.
                while coflows.len() < 3 || rng.gen_bool(0.3) {
                    let width = rng.gen_range(1..6usize);
                    let flows: Vec<FlowView> = (0..width)
                        .map(|_| {
                            let f = fv(
                                next_flow,
                                rng.gen_range(0..num_nodes as u32),
                                rng.gen_range(0..num_nodes as u32),
                                0,
                            );
                            next_flow += 1;
                            f
                        })
                        .collect();
                    coflows.push(CoflowView {
                        id: CoflowId(next_cf),
                        arrival: now,
                        flows,
                        restarted: false,
                    });
                    changed.push(CoflowId(next_cf));
                    next_cf += 1;
                }
                // Byte growth (drives total-bytes queue transitions),
                // finishes, and readiness flips (both re-book the flow
                // list). Every mutation lands in the hint.
                for c in coflows.iter_mut() {
                    if rng.gen_bool(0.5) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].sent =
                            Bytes(c.flows[fi].sent.as_u64() + rng.gen_range(0..8_000_000u64));
                        changed.push(c.id);
                    }
                    if rng.gen_bool(0.25) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].finished = true;
                        changed.push(c.id);
                    }
                    if rng.gen_bool(0.15) {
                        let fi = rng.gen_range(0..c.flows.len());
                        c.flows[fi].ready = !c.flows[fi].ready;
                        changed.push(c.id);
                    }
                }
                // Departures: drained CoFlows usually leave; occasionally
                // one is yanked mid-transfer (failure/abort path).
                coflows.retain(|c| {
                    let drained = c.flows.iter().all(|f| f.finished);
                    !(drained && rng.gen_bool(0.8) || rng.gen_bool(0.05))
                });
                now = now.saturating_add(saath_simcore::Duration::from_millis(8));
                let out_inc = {
                    let view = ClusterView {
                        now,
                        num_nodes,
                        coflows: &coflows,
                        changed: Some(&changed),
                    };
                    let mut bank = PortBank::uniform(num_nodes, GBPS);
                    let mut out = Schedule::default();
                    inc.compute(&view, &mut bank, &mut out);
                    out
                };
                let out_full = {
                    let view = ClusterView {
                        now,
                        num_nodes,
                        coflows: &coflows,
                        changed: None,
                    };
                    let mut bank = PortBank::uniform(num_nodes, GBPS);
                    let mut out = Schedule::default();
                    full.compute(&view, &mut bank, &mut out);
                    out
                };
                assert_eq!(
                    out_inc, out_full,
                    "schedules diverged at round {round} (strict={strict})"
                );
            }
        }
    }

    /// Aalo is work conserving at the flow level: with one sender and
    /// two receivers, both flows of one CoFlow run (no gang semantics).
    #[test]
    fn flow_level_work_conservation() {
        let coflows = vec![cv(0, 0, vec![fv(0, 0, 1, 0), fv(1, 0, 2, 0)])];
        let out = run(&coflows, 3);
        // First flow takes the whole uplink, second gets nothing —
        // uncoordinated, but no capacity is left idle while demand
        // exists elsewhere... on these ports.
        assert_eq!(out.rate_of(FlowId(0)), GBPS);
        assert_eq!(out.rate_of(FlowId(1)), Rate::ZERO);
    }
}
