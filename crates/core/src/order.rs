//! Incrementally maintained LCoF ordering (the *order book*).
//!
//! Saath's global scan order is a total order over live CoFlows keyed
//! by `(queue, !expired, k_c, arrival, id)` (see `Saath::compute`).
//! Historically every round re-sorted the full CoFlow list even though
//! in steady state almost nothing moves: queues change only when a
//! flow crosses a byte threshold, `k_c` only when a footprint changes,
//! and expiry only when a deadline passes. The [`OrderBook`] keeps the
//! order materialized across rounds and repositions *only* the
//! CoFlows whose key components changed — the same
//! incremental-with-oracle pattern as `ContentionTracker`: the full
//! re-sort remains the executable specification, debug-asserted
//! against every round.
//!
//! ## Structure
//!
//! CoFlows are bucketed by their coarse *class* `(queue, !expired)`
//! (an ordered map, so classes emit in priority order; `!expired`
//! sorts expired CoFlows first within a queue, D5) and within a class
//! by the ordered sub-key `(k_c, arrival, id)`. The `id` tiebreaker
//! makes the key total, so emitted order is *identical* to the full
//! sort — not merely equivalent. A side map carries each CoFlow's
//! current key and its slot (index) in this round's view, refreshed on
//! every upsert; repositioning costs two tree operations only when the
//! key actually changed.

use saath_simcore::{CoflowId, FastHashMap, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Coarse ordering class: `(queue, !expired)`. `false < true`, so
/// within a queue the expired CoFlows come first.
pub type OrderClass = (usize, bool);

/// Intra-class ordering key: `(k_c` — or 0 with LCoF off — `, arrival)`.
/// The [`CoflowId`] appended by the book makes the full key total.
pub type OrderSub = (u32, Time);

#[derive(Clone, Copy)]
struct Entry {
    class: OrderClass,
    sub: OrderSub,
    /// Index into this round's `view.coflows`, refreshed every upsert.
    slot: u32,
}

/// The materialized LCoF order. See the module docs.
#[derive(Default)]
pub struct OrderBook {
    /// class → ordered members `(k, arrival, id)`.
    buckets: BTreeMap<OrderClass, BTreeSet<(u32, Time, CoflowId)>>,
    /// Every booked CoFlow's current key and view slot.
    entries: FastHashMap<CoflowId, Entry>,
}

impl OrderBook {
    /// An empty book.
    pub fn new() -> OrderBook {
        OrderBook::default()
    }

    /// Number of booked CoFlows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all state (used when the configuration's ordering inputs
    /// change shape, e.g. in tests).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.entries.clear();
    }

    /// Inserts `id` or repositions it under a new key, and refreshes
    /// its view slot either way. Returns `true` when the ordering key
    /// changed (one tree removal + insertion); `false` for the
    /// steady-state slot-only refresh, which touches no tree node.
    pub fn upsert(&mut self, id: CoflowId, class: OrderClass, sub: OrderSub, slot: u32) -> bool {
        if let Some(e) = self.entries.get_mut(&id) {
            if e.class == class && e.sub == sub {
                e.slot = slot;
                return false;
            }
            let (old_class, old_sub) = (e.class, e.sub);
            e.class = class;
            e.sub = sub;
            e.slot = slot;
            let bucket = self
                .buckets
                .get_mut(&old_class)
                .expect("booked entry without a bucket");
            let removed = bucket.remove(&(old_sub.0, old_sub.1, id));
            debug_assert!(removed, "booked entry missing from its bucket");
            if bucket.is_empty() {
                self.buckets.remove(&old_class);
            }
        } else {
            self.entries.insert(id, Entry { class, sub, slot });
        }
        let inserted = self
            .buckets
            .entry(class)
            .or_default()
            .insert((sub.0, sub.1, id));
        debug_assert!(inserted, "duplicate CoflowId in bucket");
        true
    }

    /// Removes a departed CoFlow. Returns whether it was booked.
    pub fn remove(&mut self, id: CoflowId) -> bool {
        let Some(e) = self.entries.remove(&id) else {
            return false;
        };
        let bucket = self
            .buckets
            .get_mut(&e.class)
            .expect("booked entry without a bucket");
        let removed = bucket.remove(&(e.sub.0, e.sub.1, id));
        debug_assert!(removed, "booked entry missing from its bucket");
        if bucket.is_empty() {
            self.buckets.remove(&e.class);
        }
        true
    }

    /// Writes the view slots of every booked CoFlow into `out`
    /// (cleared first) in full `(queue, !expired, k, arrival, id)`
    /// order — byte-identical to sorting the slots by that key.
    pub fn emit_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(self.entries.len());
        for bucket in self.buckets.values() {
            for &(_, _, id) in bucket {
                out.push(self.entries[&id].slot as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(book: &OrderBook) -> Vec<usize> {
        let mut out = Vec::new();
        book.emit_into(&mut out);
        out
    }

    #[test]
    fn emits_in_total_key_order() {
        let mut book = OrderBook::new();
        // slot == id for readability. Keys chosen so every component
        // participates in the order at least once.
        let rows: [(u32, OrderClass, OrderSub); 6] = [
            (0, (1, true), (0, Time(5))),  // queue 1
            (1, (0, true), (2, Time(0))),  // queue 0, k 2
            (2, (0, true), (1, Time(9))),  // queue 0, k 1
            (3, (0, false), (7, Time(3))), // queue 0, expired → first
            (4, (0, true), (2, Time(0))),  // ties with 1 → id breaks
            (5, (1, false), (0, Time(0))), // queue 1, expired
        ];
        for &(id, class, sub) in &rows {
            assert!(book.upsert(CoflowId(id), class, sub, id));
        }
        assert_eq!(emit(&book), vec![3, 2, 1, 4, 5, 0]);
        assert_eq!(book.len(), 6);
    }

    #[test]
    fn steady_state_refresh_touches_no_tree() {
        let mut book = OrderBook::new();
        assert!(book.upsert(CoflowId(7), (0, true), (3, Time(1)), 0));
        // Same key, new slot: no rekey, but the slot must be refreshed.
        assert!(!book.upsert(CoflowId(7), (0, true), (3, Time(1)), 4));
        assert_eq!(emit(&book), vec![4]);
    }

    #[test]
    fn rekey_repositions_and_empties_old_bucket() {
        let mut book = OrderBook::new();
        book.upsert(CoflowId(1), (0, true), (5, Time(0)), 1);
        book.upsert(CoflowId(2), (1, true), (0, Time(0)), 2);
        // CoFlow 1 is demoted to queue 2: its old class bucket empties.
        assert!(book.upsert(CoflowId(1), (2, true), (5, Time(0)), 1));
        assert_eq!(emit(&book), vec![2, 1]);
        // And back up, ahead of CoFlow 2 via a smaller k.
        assert!(book.upsert(CoflowId(1), (1, true), (0, Time(0)), 1));
        // Tie on (class, k, arrival) → id 1 < 2.
        assert_eq!(emit(&book), vec![1, 2]);
    }

    #[test]
    fn remove_departed() {
        let mut book = OrderBook::new();
        book.upsert(CoflowId(1), (0, true), (0, Time(0)), 0);
        book.upsert(CoflowId(2), (0, true), (1, Time(0)), 1);
        assert!(book.remove(CoflowId(1)));
        assert!(!book.remove(CoflowId(1)), "double remove is a no-op");
        assert_eq!(emit(&book), vec![1]);
        assert!(book.remove(CoflowId(2)));
        assert!(book.is_empty());
    }

    /// Random churn: the book must always emit exactly what a full
    /// re-sort of the live set produces.
    #[test]
    fn matches_full_sort_under_random_churn() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x0b00c);
        let mut book = OrderBook::new();
        let mut live: Vec<(CoflowId, OrderClass, OrderSub)> = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..300 {
            // Arrivals.
            while live.is_empty() || rng.gen_bool(0.4) {
                let row = (
                    CoflowId(next_id),
                    (rng.gen_range(0..4usize), rng.gen_bool(0.8)),
                    (rng.gen_range(0..5u32), Time(rng.gen_range(0..10))),
                );
                live.push(row);
                next_id += 1;
            }
            // Rekeys.
            for row in live.iter_mut() {
                if rng.gen_bool(0.3) {
                    row.1 = (rng.gen_range(0..4usize), rng.gen_bool(0.8));
                    row.2 = (rng.gen_range(0..5u32), row.2 .1);
                }
            }
            // Departures.
            if live.len() > 2 && rng.gen_bool(0.3) {
                let gone = live.swap_remove(rng.gen_range(0..live.len()));
                book.remove(gone.0);
            }
            // Upsert everything with its current slot, emit, compare.
            for (slot, &(id, class, sub)) in live.iter().enumerate() {
                book.upsert(id, class, sub, slot as u32);
            }
            let mut want: Vec<usize> = (0..live.len()).collect();
            want.sort_by_key(|&i| {
                let (id, class, sub) = live[i];
                (class, sub.0, sub.1, id)
            });
            assert_eq!(emit(&book), want);
        }
    }
}
