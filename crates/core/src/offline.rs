//! Clairvoyant baselines: SEBF (Varys), SCF, SRTF, and LWTF.
//!
//! These policies know every flow's ground-truth size, which is exactly
//! what makes them *offline*: "using SCF online is not practical as it
//! requires prior knowledge about the CoFlow sizes" (§2.2). They exist
//! here because the paper uses them as yardsticks:
//!
//! * **SEBF + MADD** is Varys (SIGCOMM'14), the strongest clairvoyant
//!   heuristic; Fig 9 shows Saath approaching it *without* prior
//!   knowledge.
//! * **SCF** (shortest total size first) and **SRTF** (shortest
//!   remaining size first) are the classic single-resource policies.
//! * **LWTF** (least `t · k` first — remaining bottleneck duration ×
//!   contention) is the paper's §2.4 construction showing that ignoring
//!   the spatial dimension costs real CCT; Fig 3 has it beating SCF and
//!   SRTF.
//!
//! All four share an allocation engine: order the CoFlows by the policy
//! key, give each in turn its MADD rates (every flow finishes exactly at
//! the CoFlow's remaining bottleneck time) while capacity lasts, then
//! backfill leftovers greedily in the same order (work conservation, as
//! Varys does).

use crate::common::ContentionTracker;
use crate::timing::SchedTimings;
use crate::view::{ClusterView, CoflowScheduler, CoflowView, Schedule};
use saath_fabric::{
    bottleneck_time_with, greedy_fill_into, madd_rates_with, FlowEndpoints, MaddScratch, PortBank,
};
use saath_simcore::{Bytes, Duration, Rate};
use std::time::Instant;

/// The ordering key a clairvoyant scheduler uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfflinePolicy {
    /// Smallest Effective Bottleneck First (Varys).
    Sebf,
    /// Shortest CoFlow (total ground-truth size) First.
    Scf,
    /// Shortest Remaining (total) Time First.
    Srtf,
    /// Least Waiting Time First: remaining bottleneck duration ×
    /// contention (§2.4).
    Lwtf,
}

impl OfflinePolicy {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            OfflinePolicy::Sebf => "varys-sebf",
            OfflinePolicy::Scf => "scf",
            OfflinePolicy::Srtf => "srtf",
            OfflinePolicy::Lwtf => "lwtf",
        }
    }
}

/// A clairvoyant scheduler with one of the [`OfflinePolicy`] orderings.
pub struct OfflineScheduler {
    policy: OfflinePolicy,
    /// Per-round overhead samples.
    pub timings: SchedTimings,
    // Per-round buffers, recycled so the hot path never allocates.
    tracker: ContentionTracker,
    k: Vec<u32>,
    keys: Vec<u128>,
    order: Vec<usize>,
    missed: Vec<usize>,
    eps: Vec<FlowEndpoints>,
    rem: Vec<Bytes>,
    rates: Vec<Rate>,
    /// Scratch bank for Γ-on-nominal-capacity keys, refreshed via
    /// [`PortBank::clone_reset_from`] instead of a per-CoFlow clone.
    scratch_bank: Option<PortBank>,
    /// Per-port accumulation scratch for MADD (Γ + rate clamping).
    madd: MaddScratch,
}

impl OfflineScheduler {
    /// A scheduler with the given ordering policy.
    pub fn new(policy: OfflinePolicy) -> OfflineScheduler {
        OfflineScheduler {
            policy,
            timings: SchedTimings::default(),
            tracker: ContentionTracker::new(),
            k: Vec::new(),
            keys: Vec::new(),
            order: Vec::new(),
            missed: Vec::new(),
            eps: Vec::new(),
            rem: Vec::new(),
            rates: Vec::new(),
            scratch_bank: None,
            madd: MaddScratch::default(),
        }
    }

    /// Varys = SEBF ordering + MADD rates.
    pub fn varys() -> OfflineScheduler {
        OfflineScheduler::new(OfflinePolicy::Sebf)
    }

    /// The policy in use.
    pub fn policy(&self) -> OfflinePolicy {
        self.policy
    }

    /// Computes the Γ-based ordering keys (SEBF / LWTF) sharded across
    /// a scoped thread pool, each shard with its own scratch bank and
    /// endpoint buffers. Keys are written by CoFlow index, so the
    /// result is independent of thread interleaving and byte-identical
    /// to the serial loop. Returns `false` when the round is too small
    /// to be worth the fan-out.
    #[cfg(feature = "parallel")]
    fn gamma_keys_parallel(&mut self, view: &ClusterView<'_>, bank: &PortBank) -> bool {
        let n = view.coflows.len();
        if n < 2 {
            return false;
        }
        let shards = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(1, n);
        self.keys.resize(n, 0);
        let lwtf = self.policy == OfflinePolicy::Lwtf;
        let k = &self.k;
        let chunk = n.div_ceil(shards);
        std::thread::scope(|s| {
            let mut keys_rest: &mut [u128] = &mut self.keys;
            let mut start = 0;
            while start < n {
                let len = chunk.min(n - start);
                let (keys_chunk, rest) = keys_rest.split_at_mut(len);
                keys_rest = rest;
                s.spawn(move || {
                    let mut scratch_bank: Option<PortBank> = None;
                    let mut madd = MaddScratch::default();
                    let mut eps: Vec<FlowEndpoints> = Vec::new();
                    let mut rem: Vec<Bytes> = Vec::new();
                    for (j, key) in keys_chunk.iter_mut().enumerate() {
                        let ci = start + j;
                        let c = &view.coflows[ci];
                        remaining_into(c, view.num_nodes, &mut eps, &mut rem);
                        let t = gamma_on_fresh_bank(&mut scratch_bank, &mut madd, bank, &eps, &rem)
                            .as_nanos() as u128;
                        *key = if lwtf { t * k[ci] as u128 } else { t };
                    }
                });
                start += len;
            }
        });
        true
    }
}

/// Remaining ground-truth volumes of a CoFlow's unfinished, ready flows,
/// paired with their endpoints, written into caller-provided buffers
/// (cleared first).
fn remaining_into(
    c: &CoflowView,
    num_nodes: usize,
    eps: &mut Vec<FlowEndpoints>,
    rem: &mut Vec<Bytes>,
) {
    eps.clear();
    rem.clear();
    for f in c.unfinished().filter(|f| f.ready) {
        eps.push(f.endpoints(num_nodes));
        rem.push(f.oracle_remaining());
    }
}

impl CoflowScheduler for OfflineScheduler {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn requires_clairvoyance(&self) -> bool {
        true
    }

    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule) {
        let t_total = Instant::now();
        let n = view.coflows.len();

        // Policy keys. Durations/sizes are u64-comparable; ties break by
        // arrival then id for determinism.
        self.keys.clear();
        match self.policy {
            OfflinePolicy::Scf => {
                self.keys.extend(view.coflows.iter().map(|c| {
                    c.flows
                        .iter()
                        .map(|f| {
                            f.oracle_size
                                .expect("clairvoyant scheduler run without an oracle")
                                .as_u64() as u128
                        })
                        .sum::<u128>()
                }));
            }
            OfflinePolicy::Srtf => {
                self.keys.extend(view.coflows.iter().map(|c| {
                    c.unfinished()
                        .map(|f| f.oracle_remaining().as_u64() as u128)
                        .sum::<u128>()
                }));
            }
            OfflinePolicy::Sebf | OfflinePolicy::Lwtf => {
                if self.policy == OfflinePolicy::Lwtf {
                    let _ = self.tracker.compute_into(view, &mut self.k);
                    #[cfg(debug_assertions)]
                    {
                        use crate::common::contention_into;
                        let mut arena = crate::common::RoundArena::new();
                        let mut oracle = Vec::new();
                        contention_into(view, &mut arena, &mut oracle);
                        assert_eq!(
                            self.k, oracle,
                            "incremental contention diverged from the contention_into oracle"
                        );
                    }
                }
                // The Γ probes are independent per CoFlow; parallel
                // builds shard them across threads with per-shard
                // scratch banks, writing keys by index — deterministic
                // either way. The waiting time a CoFlow inflicts under
                // LWTF is t·k; a CoFlow contending with nobody (k = 0)
                // delays nobody and can go first.
                #[cfg(feature = "parallel")]
                let keyed = self.gamma_keys_parallel(view, bank);
                #[cfg(not(feature = "parallel"))]
                let keyed = false;
                if !keyed {
                    let lwtf = self.policy == OfflinePolicy::Lwtf;
                    for (ci, c) in view.coflows.iter().enumerate() {
                        remaining_into(c, view.num_nodes, &mut self.eps, &mut self.rem);
                        let t = gamma_on_fresh_bank(
                            &mut self.scratch_bank,
                            &mut self.madd,
                            bank,
                            &self.eps,
                            &self.rem,
                        )
                        .as_nanos() as u128;
                        self.keys
                            .push(if lwtf { t * self.k[ci] as u128 } else { t });
                    }
                }
            }
        };

        self.order.clear();
        self.order.extend(0..n);
        let keys = &self.keys;
        self.order
            .sort_by_key(|&i| (keys[i], view.coflows[i].arrival, view.coflows[i].id));

        // MADD in policy order while capacity lasts.
        self.missed.clear();
        for oi in 0..self.order.len() {
            let ci = self.order[oi];
            let c = &view.coflows[ci];
            remaining_into(c, view.num_nodes, &mut self.eps, &mut self.rem);
            if self.eps.is_empty() {
                continue;
            }
            if madd_rates_with(bank, &self.eps, &self.rem, &mut self.madd, &mut self.rates)
                && self.rates.iter().any(|r| !r.is_zero())
            {
                for (e, &r) in self.eps.iter().zip(self.rates.iter()) {
                    if !r.is_zero() {
                        bank.allocate(e.src, r);
                        bank.allocate(e.dst, r);
                        out.set(e.flow, r);
                    }
                }
            } else {
                self.missed.push(ci);
            }
        }

        // Work-conserving backfill, same order (Varys does the same).
        for mi in 0..self.missed.len() {
            let ci = self.missed[mi];
            let c = &view.coflows[ci];
            remaining_into(c, view.num_nodes, &mut self.eps, &mut self.rem);
            greedy_fill_into(bank, &self.eps, &mut self.rates);
            for (e, &r) in self.eps.iter().zip(self.rates.iter()) {
                if !r.is_zero() {
                    out.set(e.flow, r);
                }
            }
        }

        self.timings.record_total(t_total.elapsed());
        self.timings.active_coflows.push(n);
    }
}

/// Γ on nominal (full) capacities — the *ordering* key must not depend
/// on what earlier CoFlows in this round already grabbed, only the
/// *allocation* does. The scratch bank is lazily cloned once, then
/// refreshed per call with [`PortBank::clone_reset_from`] so the key
/// computation allocates nothing in steady state.
fn gamma_on_fresh_bank(
    scratch: &mut Option<PortBank>,
    madd: &mut MaddScratch,
    bank: &PortBank,
    eps: &[FlowEndpoints],
    rem: &[Bytes],
) -> Duration {
    let fresh = match scratch {
        Some(fresh) => {
            fresh.clone_reset_from(bank);
            fresh
        }
        slot => {
            let mut fresh = bank.clone();
            fresh.reset_round();
            slot.insert(fresh)
        }
    };
    bottleneck_time_with(fresh, eps, rem, madd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::FlowView;
    use saath_simcore::{CoflowId, FlowId, NodeId, Rate, Time};

    const GBPS: Rate = Rate::gbps(1);

    fn fv(id: u32, src: u32, dst: u32, size_tenths: u64) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            sent: Bytes::ZERO,
            ready: true,
            finished: false,
            oracle_size: Some(Bytes(GBPS.as_u64() / 10 * size_tenths)),
        }
    }

    fn cv(id: u32, flows: Vec<FlowView>) -> CoflowView {
        CoflowView {
            id: CoflowId(id),
            arrival: Time::ZERO,
            flows,
            restarted: false,
        }
    }

    fn run(policy: OfflinePolicy, coflows: &[CoflowView], num_nodes: usize) -> Schedule {
        let view = ClusterView {
            now: Time::ZERO,
            num_nodes,
            coflows,
            changed: None,
        };
        let mut bank = PortBank::uniform(num_nodes, GBPS);
        let mut out = Schedule::default();
        OfflineScheduler::new(policy).compute(&view, &mut bank, &mut out);
        out
    }

    /// Fig 17: SJF/SCF schedules short-but-wide C1 first; LWTF schedules
    /// the low-contention C2/C3 first.
    #[test]
    fn fig17_scf_vs_lwtf() {
        let coflows = vec![
            cv(1, vec![fv(10, 0, 2, 50), fv(11, 1, 3, 50)]), // total 10 units
            cv(2, vec![fv(20, 0, 4, 60)]),                   // total 6
            cv(3, vec![fv(30, 1, 5, 70)]),                   // total 7
        ];
        // SCF: C2 (6) < C3 (7) < C1 (10)… wait — C1's *total* is
        // 50+50=100 tenths = 10 units, C2 = 6, C3 = 7. SCF runs C2 and
        // C3 first here. The paper's Fig 17 uses per-port durations
        // (5 vs 6 vs 7), i.e. C1's duration is its bottleneck, not its
        // sum — that is SEBF's key. Under SEBF, C1 (Γ=5s) goes first,
        // blocking both.
        let out = run(OfflinePolicy::Sebf, &coflows, 6);
        assert_eq!(out.rate_of(FlowId(10)), GBPS);
        assert_eq!(out.rate_of(FlowId(11)), GBPS);
        assert_eq!(out.rate_of(FlowId(20)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(30)), Rate::ZERO);

        // LWTF: t·k = C1: 5·2 = 10, C2: 6·1 = 6, C3: 7·1 = 7 → C2, C3
        // first.
        let out = run(OfflinePolicy::Lwtf, &coflows, 6);
        assert_eq!(out.rate_of(FlowId(20)), GBPS);
        assert_eq!(out.rate_of(FlowId(30)), GBPS);
        assert_eq!(out.rate_of(FlowId(10)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(11)), Rate::ZERO);
    }

    /// MADD synchronizes a CoFlow's flows: uneven flows sharing a port
    /// get proportional rates.
    #[test]
    fn madd_rates_synchronize() {
        let coflows = vec![cv(0, vec![fv(0, 0, 1, 80), fv(1, 0, 2, 20)])];
        let out = run(OfflinePolicy::Sebf, &coflows, 3);
        let r0 = out.rate_of(FlowId(0)).as_u64() as f64;
        let r1 = out.rate_of(FlowId(1)).as_u64() as f64;
        assert!((r0 / r1 - 4.0).abs() < 0.01, "rates {r0}/{r1} not 4:1");
        // Port is fully used (within rounding).
        assert!(r0 + r1 >= GBPS.as_u64() as f64 * 0.999);
    }

    /// SRTF keys on *remaining*, SCF on total: a nearly-done big CoFlow
    /// beats a fresh medium CoFlow under SRTF but not SCF.
    #[test]
    fn srtf_vs_scf_keys() {
        let mut big = cv(0, vec![fv(0, 0, 2, 100)]);
        big.flows[0].sent = Bytes(GBPS.as_u64() / 10 * 99); // 0.1 units left
        let medium = cv(1, vec![fv(10, 0, 3, 50)]);
        let coflows = vec![big, medium];

        let out = run(OfflinePolicy::Srtf, &coflows, 4);
        assert_eq!(out.rate_of(FlowId(0)), GBPS, "SRTF favors the nearly-done");
        let out = run(OfflinePolicy::Scf, &coflows, 4);
        assert_eq!(
            out.rate_of(FlowId(10)),
            GBPS,
            "SCF favors the smaller total"
        );
    }

    /// Backfill: a skipped CoFlow's flows still use leftover ports.
    #[test]
    fn skipped_coflows_backfill() {
        // C0 takes sender 0 entirely; C1 has flows on senders 0 and 1 —
        // MADD for C1 fails (sender 0 exhausted) but its sender-1 flow
        // backfills.
        let coflows = vec![
            cv(0, vec![fv(0, 0, 2, 10)]),
            cv(1, vec![fv(10, 0, 3, 100), fv(11, 1, 4, 100)]),
        ];
        let out = run(OfflinePolicy::Sebf, &coflows, 5);
        assert_eq!(out.rate_of(FlowId(0)), GBPS);
        assert_eq!(out.rate_of(FlowId(10)), Rate::ZERO);
        assert_eq!(out.rate_of(FlowId(11)), GBPS);
    }

    #[test]
    fn requires_clairvoyance_flag() {
        assert!(OfflineScheduler::varys().requires_clairvoyance());
        assert_eq!(OfflineScheduler::varys().name(), "varys-sebf");
        assert_eq!(OfflineScheduler::new(OfflinePolicy::Lwtf).name(), "lwtf");
    }

    #[test]
    #[should_panic(expected = "without an oracle")]
    fn missing_oracle_fails_loudly() {
        let mut c = cv(0, vec![fv(0, 0, 1, 10)]);
        c.flows[0].oracle_size = None;
        let _ = run(OfflinePolicy::Scf, &[c], 2);
    }
}
