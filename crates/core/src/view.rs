//! The coordinator's view of the cluster, and the schedule it produces.
//!
//! These types are the contract between a scheduler and whatever drives
//! it (the discrete-event simulator or the distributed runtime). The
//! driver owns ground truth; the view exposes only what a real
//! coordinator would know from local-agent reports (§4.2 "Input"):
//! bytes sent per flow, readiness, finishedness, port locations — plus
//! an optional *oracle* (ground-truth sizes) that only clairvoyant
//! baselines may read.

use saath_fabric::{FlowEndpoints, PortBank};
use saath_simcore::{Bytes, CoflowId, FlowId, NodeId, PortId, Rate, Time};

/// One flow as the coordinator sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowView {
    /// Globally unique flow id (dense across the run).
    pub id: FlowId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes sent so far — the only size signal online schedulers get.
    pub sent: Bytes,
    /// Whether the flow's data is available to send (§4.3 pipelining).
    pub ready: bool,
    /// Whether the flow has completed.
    pub finished: bool,
    /// Ground-truth total size. `Some` only when the driver runs in
    /// clairvoyant mode; online schedulers must not read it (enforced by
    /// review + the `requires_clairvoyance` handshake, not by types,
    /// because the simulator builds one view for all schedulers).
    pub oracle_size: Option<Bytes>,
}

impl FlowView {
    /// The flow's two contended ports.
    pub fn endpoints(&self, num_nodes: usize) -> FlowEndpoints {
        FlowEndpoints {
            flow: self.id,
            src: PortId::uplink(self.src),
            dst: PortId::downlink(self.dst, num_nodes),
        }
    }

    /// Ground-truth remaining volume (clairvoyant only).
    ///
    /// # Panics
    /// Panics if the driver did not provide the oracle.
    pub fn oracle_remaining(&self) -> Bytes {
        self.oracle_size
            .expect("clairvoyant scheduler run without an oracle")
            .saturating_sub(self.sent)
    }
}

/// One active CoFlow as the coordinator sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoflowView {
    /// The CoFlow.
    pub id: CoflowId,
    /// When it was released to the scheduler (after DAG dependencies).
    pub arrival: Time,
    /// All of its flows, finished ones included — the dynamics heuristic
    /// (§4.3) estimates remaining lengths from finished siblings.
    pub flows: Vec<FlowView>,
    /// Set when the driver has told the coordinator (via the `update()`
    /// CoFlow operation) that this CoFlow was hit by a failure or
    /// straggler, enabling the §4.3 re-queue heuristic.
    pub restarted: bool,
}

impl CoflowView {
    /// Flows still in progress.
    pub fn unfinished(&self) -> impl Iterator<Item = &FlowView> {
        self.flows.iter().filter(|f| !f.finished)
    }

    /// Whether every flow has finished (the driver normally drops such
    /// CoFlows from the view).
    pub fn is_done(&self) -> bool {
        self.flows.iter().all(|f| f.finished)
    }

    /// Width = number of flows (Eq. 1 divides thresholds by it).
    pub fn width(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes sent so far (Aalo's queue key).
    pub fn total_sent(&self) -> Bytes {
        self.flows.iter().map(|f| f.sent).sum()
    }

    /// Max bytes sent by any single flow — the paper's `m_c` (D1/D3).
    pub fn max_flow_sent(&self) -> Bytes {
        self.flows
            .iter()
            .map(|f| f.sent)
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Whether every unfinished flow has data ready; all-or-none only
    /// admits fully-ready CoFlows (§4.3).
    pub fn all_ready(&self) -> bool {
        self.unfinished().all(|f| f.ready)
    }
}

/// What the scheduler knows this round.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current time (schedule epochs are δ-aligned).
    pub now: Time,
    /// Cluster size; ports number `2 * num_nodes`.
    pub num_nodes: usize,
    /// Active (not yet complete) CoFlows.
    pub coflows: &'a [CoflowView],
    /// Change hint from the driver: ids of CoFlows whose view contents
    /// (*any* field of the [`CoflowView`] or its flows — footprint,
    /// `sent` bytes, readiness, `restarted`) may have changed since the
    /// previous round this scheduler saw, plus ids that departed. Must
    /// be a superset of actual changes — extra ids cost time, missing
    /// ids cost correctness: schedulers cache per-CoFlow derivations
    /// (contention footprints, queue assignments, ordering keys) for
    /// ids outside the hint. `None` means "assume everything changed"
    /// and is always safe; drivers without dirty tracking (tests, the
    /// reference loop) pass `None`.
    ///
    /// The simulator's dirty set satisfies the contract: it marks
    /// arrival, byte progress, finish, readiness, straggler
    /// start/end, and failure-reset.
    pub changed: Option<&'a [CoflowId]>,
}

/// The output of one scheduling round: a rate for every flow that may
/// send. Flows not listed are paused (rate zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// `(flow, rate)` pairs; each flow appears at most once.
    pub rates: Vec<(FlowId, Rate)>,
}

impl Schedule {
    /// Clears for reuse across rounds (keeps capacity).
    pub fn clear(&mut self) {
        self.rates.clear();
    }

    /// Adds a flow's rate (skips zero rates — absent means paused).
    pub fn set(&mut self, flow: FlowId, rate: Rate) {
        debug_assert!(
            !self.rates.iter().any(|(f, _)| *f == flow),
            "flow {flow} scheduled twice"
        );
        if !rate.is_zero() {
            self.rates.push((flow, rate));
        }
    }

    /// Looks up a flow's rate (zero if absent).
    pub fn rate_of(&self, flow: FlowId) -> Rate {
        self.rates
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, r)| *r)
            .unwrap_or(Rate::ZERO)
    }

    /// Keeps only the entries the predicate accepts — used by shard
    /// replicas to cut a full schedule down to their owned slice.
    pub fn retain(&mut self, mut keep: impl FnMut(FlowId) -> bool) {
        self.rates.retain(|(f, _)| keep(*f));
    }
}

/// Maps a CoFlow to its owning coordinator shard among `k`.
///
/// The hash is splitmix64 — a fixed, platform-independent mixer — so
/// the shard assignment is stable across runs, architectures, and the
/// simulator/runtime boundary (both sides must agree on ownership for
/// the merged schedule to equal the single-coordinator one). `k = 1`
/// degenerates to "everything is shard 0", i.e. the unsharded path.
pub fn shard_of(coflow: CoflowId, k: usize) -> usize {
    debug_assert!(k > 0, "shard count must be positive");
    if k <= 1 {
        return 0;
    }
    let mut z = (coflow.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % k as u64) as usize
}

/// A CoFlow scheduling policy. Implementations must be deterministic
/// functions of the view, the bank, and their own internal state.
pub trait CoflowScheduler {
    /// Short name used in reports ("saath", "aalo", …).
    fn name(&self) -> &'static str;

    /// Whether the policy reads ground-truth sizes. Drivers refuse to
    /// run clairvoyant policies without an oracle, so a misconfiguration
    /// fails loudly instead of producing silently-wrong numbers.
    fn requires_clairvoyance(&self) -> bool {
        false
    }

    /// Computes this round's schedule. `bank` arrives reset to the
    /// current capacities (straggler effects included); the scheduler
    /// draws it down as it admits flows, and fills `out` (cleared by the
    /// caller).
    fn compute(&mut self, view: &ClusterView<'_>, bank: &mut PortBank, out: &mut Schedule);

    /// Mechanism counters (queue transitions, deadline rescues, …)
    /// accumulated across rounds, for policies that maintain them.
    /// Meaningful only in `telemetry`-feature builds; the default is
    /// `None` so baselines need no instrumentation.
    fn mech_counters(&self) -> Option<&saath_telemetry::MechCounters> {
        None
    }

    /// Per-priority-queue CoFlow occupancy as of the last `compute`,
    /// lowest queue first, for policies with a queue structure. Feeds
    /// the telemetry round trace; the default is `None`.
    fn queue_occupancy(&self) -> Option<&[usize]> {
        None
    }

    /// Serializes the scheduler state a snapshot must persist to make a
    /// resumed run byte-identical to the uninterrupted one.
    ///
    /// Only *historical* state belongs here — state that is a function
    /// of rounds the resumed run never saw (e.g. Saath's per-CoFlow
    /// queue deadlines, which depend on when each CoFlow entered its
    /// queue). Caches that are pure functions of the current view
    /// (contention tables, order books) must NOT be saved: the engine
    /// passes `changed: None` on the first post-resume round, and the
    /// hint contract obliges every implementation to rebuild them.
    ///
    /// The default writes nothing — correct for stateless-or-derivable
    /// policies (Aalo, the baselines).
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Restores state captured by [`save_state`] on a freshly
    /// constructed scheduler of the same policy. The default accepts
    /// only an empty blob, so pairing a stateful snapshot with a
    /// stateless policy fails loudly instead of silently diverging.
    ///
    /// [`save_state`]: CoflowScheduler::save_state
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "scheduler '{}' carries no persistent state but the snapshot has {} bytes of it",
                self.name(),
                bytes.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(id: u32, sent: u64, finished: bool) -> FlowView {
        FlowView {
            id: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            sent: Bytes(sent),
            ready: true,
            finished,
            oracle_size: Some(Bytes(1000)),
        }
    }

    #[test]
    fn coflow_view_accessors() {
        let c = CoflowView {
            id: CoflowId(0),
            arrival: Time::ZERO,
            flows: vec![fv(0, 100, false), fv(1, 700, true), fv(2, 300, false)],
            restarted: false,
        };
        assert_eq!(c.width(), 3);
        assert_eq!(c.total_sent(), Bytes(1100));
        assert_eq!(c.max_flow_sent(), Bytes(700));
        assert_eq!(c.unfinished().count(), 2);
        assert!(!c.is_done());
        assert!(c.all_ready());
    }

    #[test]
    fn readiness_only_considers_unfinished() {
        let mut c = CoflowView {
            id: CoflowId(0),
            arrival: Time::ZERO,
            flows: vec![fv(0, 0, true), fv(1, 0, false)],
            restarted: false,
        };
        c.flows[0].ready = false; // finished flow's readiness is moot
        assert!(c.all_ready());
        c.flows[1].ready = false;
        assert!(!c.all_ready());
    }

    #[test]
    fn schedule_set_and_lookup() {
        let mut s = Schedule::default();
        s.set(FlowId(3), Rate(100));
        s.set(FlowId(4), Rate::ZERO); // dropped
        assert_eq!(s.rate_of(FlowId(3)), Rate(100));
        assert_eq!(s.rate_of(FlowId(4)), Rate::ZERO);
        assert_eq!(s.rates.len(), 1);
        s.clear();
        assert_eq!(s.rate_of(FlowId(3)), Rate::ZERO);
    }

    #[test]
    fn schedule_retain_keeps_only_owned_flows() {
        let mut s = Schedule::default();
        s.set(FlowId(1), Rate(10));
        s.set(FlowId(2), Rate(20));
        s.set(FlowId(3), Rate(30));
        s.retain(|f| f.0 % 2 == 1);
        assert_eq!(s.rates, vec![(FlowId(1), Rate(10)), (FlowId(3), Rate(30))]);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // k = 1 always maps to shard 0.
        for id in 0..64 {
            assert_eq!(shard_of(CoflowId(id), 1), 0);
        }
        for k in [2usize, 3, 4, 7] {
            let mut hit = vec![0usize; k];
            for id in 0..256 {
                let s = shard_of(CoflowId(id), k);
                assert!(s < k);
                // Deterministic: same input, same shard.
                assert_eq!(s, shard_of(CoflowId(id), k));
                hit[s] += 1;
            }
            // splitmix64 spreads 256 ids across every shard.
            assert!(hit.iter().all(|&n| n > 0), "empty shard for k={k}: {hit:?}");
        }
    }

    #[test]
    fn oracle_remaining() {
        let f = fv(0, 300, false);
        assert_eq!(f.oracle_remaining(), Bytes(700));
    }

    #[test]
    #[should_panic(expected = "without an oracle")]
    fn missing_oracle_panics() {
        let mut f = fv(0, 0, false);
        f.oracle_size = None;
        let _ = f.oracle_remaining();
    }

    #[test]
    fn endpoints_encode_ports() {
        let f = fv(0, 0, false);
        let e = f.endpoints(4);
        assert_eq!(e.src, PortId(0));
        assert_eq!(e.dst, PortId(5)); // 4 + 1
    }
}
