//! # saath-core
//!
//! The paper's contribution and every baseline it is evaluated against,
//! behind one trait:
//!
//! * [`saath::Saath`] — the online scheduler this reproduction is about:
//!   **all-or-none** gang admission (§3.1), **per-flow queue
//!   thresholds** (§3.2, Eq. 1), **Least-Contention-First** ordering
//!   (§3.3), work conservation (D4), FIFO-derived starvation deadlines
//!   (D5), and the SRTF-style re-queue heuristic for cluster dynamics
//!   (§4.3). Ablation flags expose the A/N and A/N+PF configurations of
//!   Fig 10.
//! * [`aalo::Aalo`] — the prior-art online scheduler (SIGCOMM'15) as the
//!   Saath paper models it: global priority queues by total bytes sent,
//!   ports acting independently with strict priority + FIFO.
//! * [`offline::OfflineScheduler`] — the clairvoyant orderings: SEBF
//!   (= Varys), SCF, SRTF, and LWTF, all allocating with MADD plus
//!   greedy backfill.
//! * [`uctcp::UcTcp`] — the uncoordinated baseline: every flow gets its
//!   global max-min fair share, approximating per-flow TCP.
//!
//! A scheduler is a pure policy: each round it receives a
//! [`view::ClusterView`] (what the coordinator knows) and a
//! [`saath_fabric::PortBank`] of capacities, and fills a
//! [`view::Schedule`] of per-flow rates. The simulator and the
//! distributed runtime both drive the same implementations, so
//! simulation and "testbed" numbers come from identical policy code —
//! as in the paper, where the simulator mirrors the deployed scheduler.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aalo;
pub mod common;
pub mod config;
pub mod merge;
pub mod offline;
pub mod order;
pub mod saath;
pub mod summary;
pub mod timing;
pub mod uctcp;
pub mod view;

pub use aalo::Aalo;
pub use config::QueueConfig;
pub use merge::{merge_rates, merge_rates_rotated};
pub use offline::{OfflinePolicy, OfflineScheduler};
pub use saath::{Saath, SaathConfig};
pub use summary::ContentionSummary;
pub use timing::SchedTimings;
pub use uctcp::UcTcp;
pub use view::{ClusterView, CoflowScheduler, CoflowView, FlowView, Schedule};
