//! The priority-queue structure shared by Saath and Aalo (§4.1).
//!
//! `N` logical queues `Q_0 … Q_{N-1}` with exponentially growing
//! thresholds: `Q_0^lo = 0`, `Q_{q+1}^lo = Q_q^hi`, `Q_q^hi = S · E^q`,
//! and `Q_{N-1}^hi = ∞`. The paper's defaults: `S` = 10 MB starting
//! threshold, growth `E` = 10, `K` = 10 queues.
//!
//! Two queue-assignment rules live here:
//!
//! * [`QueueConfig::queue_for_total`] — Aalo's rule: a CoFlow sits in
//!   the queue whose span contains its *total* bytes sent.
//! * [`QueueConfig::queue_for_per_flow`] — Saath's Eq. (1): thresholds
//!   are split equally among the CoFlow's `N_c` flows and the CoFlow is
//!   placed by the *maximum bytes sent by any single flow*, `m_c`, so
//!   one fast flow (e.g. from work conservation) demotes the whole
//!   CoFlow early.

use saath_simcore::{Bytes, Duration, Rate};
use serde::{Deserialize, Serialize};

/// Priority-queue parameters (defaults = the paper's).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Number of queues `K`.
    pub num_queues: usize,
    /// Starting threshold `S` = `Q_0^hi`.
    pub first_threshold: Bytes,
    /// Exponential growth factor `E`.
    pub growth: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            num_queues: 10,
            first_threshold: Bytes::mb(10),
            growth: 10,
        }
    }
}

impl QueueConfig {
    /// Upper threshold `Q_q^hi` (`u64::MAX`-saturating; the last queue
    /// is unbounded by construction).
    pub fn hi(&self, q: usize) -> Bytes {
        assert!(q < self.num_queues, "queue {q} out of range");
        if q == self.num_queues - 1 {
            return Bytes(u64::MAX);
        }
        let mut v = self.first_threshold.as_u64();
        for _ in 0..q {
            v = v.saturating_mul(self.growth);
        }
        Bytes(v)
    }

    /// Lower threshold `Q_q^lo` (= `Q_{q-1}^hi`, zero for `q = 0`).
    pub fn lo(&self, q: usize) -> Bytes {
        if q == 0 {
            Bytes::ZERO
        } else {
            self.hi(q - 1)
        }
    }

    /// Aalo's rule: the queue whose `(lo, hi]` span contains `total`
    /// bytes sent. A brand-new CoFlow (0 bytes) is in `Q_0`.
    pub fn queue_for_total(&self, total: Bytes) -> usize {
        for q in 0..self.num_queues {
            // A CoFlow moves down only once it *exceeds* the threshold,
            // so equality keeps it in place.
            if total <= self.hi(q) {
                return q;
            }
        }
        self.num_queues - 1
    }

    /// Saath's Eq. (1): the smallest `q` with
    /// `m_c ≤ Q_q^hi / N_c`, where `m_c` is the max bytes sent by any
    /// flow and `N_c` the flow count.
    pub fn queue_for_per_flow(&self, m_c: Bytes, n_flows: usize) -> usize {
        assert!(n_flows > 0, "CoFlow with zero flows");
        for q in 0..self.num_queues {
            let hi = self.hi(q);
            let share = if hi.as_u64() == u64::MAX {
                hi
            } else {
                hi.div_per_flow(n_flows)
            };
            if m_c <= share {
                return q;
            }
        }
        self.num_queues - 1
    }

    /// Skew-aware variant of Eq. (1) — the extension the paper sketches
    /// ("more sophisticated ways can be used in clusters with skewed
    /// flow duration distribution", §3).
    ///
    /// Equal splitting penalizes CoFlows with naturally uneven flows:
    /// one long flow crosses `hi/N` early and demotes the whole CoFlow
    /// even though its siblings have barely started. Here each flow's
    /// share is a blend of the equal split and the flow's *observed*
    /// fraction of the CoFlow's bytes:
    /// `share_i(q) = hi(q) · (1/(2N) + sent_i / (2 · total))`,
    /// and the CoFlow sits in the smallest queue where every flow is
    /// within its share. For equal-length flows this reduces exactly to
    /// the paper's rule; for skewed CoFlows the long flow gets a
    /// proportionally larger allowance, delaying demotion until the
    /// CoFlow as a whole has actually sent comparable volume.
    pub fn queue_for_skew_aware(&self, sents: &[Bytes]) -> usize {
        let n = sents.len();
        assert!(n > 0, "CoFlow with zero flows");
        let total: u128 = sents.iter().map(|s| s.as_u64() as u128).sum();
        if total == 0 {
            return 0;
        }
        // Binding requirement: hi(q) ≥ max_i sent_i / (1/(2N) + sent_i/(2·total)).
        // Computed in integers: hi ≥ (2 · sent_i · N · total) / (total + sent_i · N).
        let mut need: u128 = 0;
        for s in sents {
            let si = s.as_u64() as u128;
            let num = 2 * si * n as u128 * total;
            let den = total + si * n as u128;
            need = need.max(num.div_ceil(den));
        }
        for q in 0..self.num_queues {
            let hi = self.hi(q).as_u64() as u128;
            if need <= hi {
                return q;
            }
        }
        self.num_queues - 1
    }

    /// The minimum time a CoFlow must spend in queue `q` before it can
    /// cross to `q+1`, at port rate `rate`: `(Q_q^hi − Q_q^lo) / B`.
    /// Starvation deadlines (D5) are `d · C_q ·` this. For the unbounded
    /// last queue we extrapolate with the growth factor, so deadlines
    /// stay finite.
    pub fn min_residence(&self, q: usize, rate: Rate) -> Duration {
        let width = if q == self.num_queues - 1 {
            // Extrapolated: lo(q) * (E - 1), the width the next queue
            // would have had.
            Bytes(
                self.lo(q)
                    .as_u64()
                    .saturating_mul(self.growth.saturating_sub(1).max(1)),
            )
        } else {
            self.hi(q) - self.lo(q)
        };
        saath_simcore::units::transfer_time(width, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = QueueConfig::default();
        assert_eq!(c.num_queues, 10);
        assert_eq!(c.first_threshold, Bytes::mb(10));
        assert_eq!(c.growth, 10);
        assert_eq!(c.hi(0), Bytes::mb(10));
        assert_eq!(c.hi(1), Bytes::mb(100));
        assert_eq!(c.lo(2), Bytes::mb(100));
        assert_eq!(c.hi(9), Bytes(u64::MAX), "last queue unbounded");
    }

    #[test]
    fn total_rule() {
        let c = QueueConfig::default();
        assert_eq!(c.queue_for_total(Bytes::ZERO), 0);
        assert_eq!(c.queue_for_total(Bytes::mb(10)), 0, "boundary stays");
        assert_eq!(c.queue_for_total(Bytes::mb(10) + Bytes(1)), 1);
        assert_eq!(c.queue_for_total(Bytes::mb(100)), 1);
        assert_eq!(c.queue_for_total(Bytes::gb(1000)), 5);
        assert_eq!(c.queue_for_total(Bytes(u64::MAX - 1)), 9);
    }

    #[test]
    fn per_flow_rule_matches_eq1() {
        let c = QueueConfig::default();
        // Paper's example (D3): 200 MB threshold, 100 flows → 2 MB per
        // flow. With S=10MB, E=10: hi(1)=100MB; 100 flows → 1 MB/flow.
        // m_c = 1.5 MB ⇒ not in Q0 (10MB/100 = 0.1MB) nor Q1 (1MB) ⇒ Q2
        // (10MB ≥ 1.5MB).
        assert_eq!(c.queue_for_per_flow(Bytes::kb(100), 100), 0);
        assert_eq!(c.queue_for_per_flow(Bytes::mb(1), 100), 1);
        assert_eq!(c.queue_for_per_flow(Bytes::mb(1) + Bytes(1), 100), 2);
        // Single-flow CoFlows degenerate to the total rule.
        assert_eq!(c.queue_for_per_flow(Bytes::mb(10), 1), 0);
        assert_eq!(c.queue_for_per_flow(Bytes::mb(11), 1), 1);
    }

    #[test]
    fn per_flow_is_never_slower_than_total() {
        // The point of Eq. 1: with equal progress, per-flow placement is
        // at least as deep (≥ queue index) as Aalo's total placement
        // once more than one flow is sending... verified on a sweep.
        let c = QueueConfig::default();
        for width in [2usize, 4, 10, 100] {
            for sent_per_flow in [0u64, 500_000, 2_000_000, 50_000_000] {
                let per_flow_q = c.queue_for_per_flow(Bytes(sent_per_flow), width);
                let total_q = c.queue_for_total(Bytes(sent_per_flow * width as u64));
                assert!(
                    per_flow_q >= total_q,
                    "width {width} sent {sent_per_flow}: pf {per_flow_q} < total {total_q}"
                );
            }
        }
    }

    #[test]
    fn fig5_fast_transition() {
        // Fig 5: threshold = B·4t total. C2 has 4 flows; with only 2
        // sending (Aalo), crossing takes 2t of port time each (B·2t
        // bytes sent per active flow). Saath's per-flow share is B·t:
        // one flow crosses after t.
        let b_t = Bytes::mb(100); // "B·t" in bytes, arbitrary
        let c = QueueConfig {
            num_queues: 2,
            first_threshold: Bytes(b_t.as_u64() * 4),
            growth: 10,
        };
        // Aalo: after t of two flows sending, total = 2·B·t ≤ 4·B·t ⇒ Q0.
        assert_eq!(c.queue_for_total(Bytes(b_t.as_u64() * 2)), 0);
        // Saath: one flow has sent B·t = per-flow share ⇒ still Q0 at
        // exactly the share, crosses just past it.
        assert_eq!(c.queue_for_per_flow(b_t, 4), 0);
        assert_eq!(c.queue_for_per_flow(Bytes(b_t.as_u64() + 1), 4), 1);
    }

    #[test]
    fn residence_times() {
        let c = QueueConfig::default();
        let gbps = Rate::gbps(1);
        // Q0: 10 MB at 1 Gbps = 80 ms.
        assert_eq!(c.min_residence(0, gbps), Duration::from_millis(80));
        // Q1: 90 MB = 720 ms.
        assert_eq!(c.min_residence(1, gbps), Duration::from_millis(720));
        // Last queue: finite (extrapolated), not infinite.
        assert!(!c.min_residence(9, gbps).is_infinite());
        assert!(c.min_residence(9, gbps) > c.min_residence(8, gbps));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hi_bounds_checked() {
        QueueConfig::default().hi(10);
    }

    #[test]
    fn skew_aware_reduces_to_eq1_for_equal_flows() {
        let c = QueueConfig::default();
        // Four equal flows: share_i = hi/N exactly, so both rules agree
        // at every progress level.
        for sent in [0u64, 100_000, 2_400_000, 2_600_000, 30_000_000] {
            let sents = vec![Bytes(sent); 4];
            assert_eq!(
                c.queue_for_skew_aware(&sents),
                c.queue_for_per_flow(Bytes(sent), 4),
                "diverged at sent={sent}"
            );
        }
    }

    #[test]
    fn skew_aware_tolerates_natural_skew() {
        let c = QueueConfig::default();
        // One flow at 4 MB, three barely started: the equal split
        // (10 MB / 4 = 2.5 MB) demotes to Q1; skew-aware recognizes the
        // long flow carries nearly all the bytes (its allowance grows
        // toward hi/2 + hi/8) and keeps the CoFlow in Q0.
        let sents = [Bytes::mb(4), Bytes::kb(10), Bytes::kb(10), Bytes::kb(10)];
        assert_eq!(c.queue_for_per_flow(Bytes::mb(4), 4), 1);
        assert_eq!(c.queue_for_skew_aware(&sents), 0);
        // It is not a free pass: once the CoFlow's volume genuinely
        // exceeds the queue's intent, it still demotes.
        let sents = [Bytes::mb(40), Bytes::mb(1), Bytes::mb(1), Bytes::mb(1)];
        assert!(c.queue_for_skew_aware(&sents) >= 1);
    }

    #[test]
    fn skew_aware_zero_progress_is_top_queue() {
        let c = QueueConfig::default();
        assert_eq!(c.queue_for_skew_aware(&[Bytes::ZERO; 3]), 0);
    }
}
