//! All-or-none (gang) allocation and greedy per-flow filling.
//!
//! These are the two rate-assignment moves in the Saath scheduling
//! round (Fig 7 of the paper):
//!
//! * [`gang_rate`] implements **D2**: when a CoFlow passes the
//!   all-or-none admission check, every one of its flows receives the
//!   *same* rate — the max-min fair share of the most contended port the
//!   CoFlow touches. There is no point running some flows faster when
//!   the CCT is decided by the slowest one.
//! * [`greedy_fill`] implements **work conservation** (D4) and doubles
//!   as Aalo's per-port FIFO behaviour: walk flows in a given order and
//!   hand each the minimum of its two ports' remaining capacity.

use crate::port::PortBank;
use saath_simcore::{FlowId, PortId, Rate};

/// A flow as the allocator sees it: an id plus its two contended ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEndpoints {
    /// The flow being allocated.
    pub flow: FlowId,
    /// The sender's uplink port.
    pub src: PortId,
    /// The receiver's downlink port.
    pub dst: PortId,
}

/// Computes the equal rate a gang-scheduled CoFlow would get, without
/// allocating anything.
///
/// For every port `p` the CoFlow touches, its fair claim is
/// `remaining(p) / n(p)` where `n(p)` is the number of the CoFlow's own
/// flows at `p`; the gang rate is the minimum claim over all ports
/// (the "slowest flow" of §4.2-D2). Returns `Rate::ZERO` when any port
/// is exhausted — which is exactly the all-or-none rejection condition.
///
/// `scratch` is a caller-provided `(port index → flow count)` map sized
/// `bank.num_ports()`, zeroed on entry and exit; passing it in keeps the
/// hot scheduling loop allocation-free.
pub fn gang_rate(bank: &PortBank, flows: &[FlowEndpoints], scratch: &mut Vec<u32>) -> Rate {
    let mut touched: Vec<PortId> = Vec::new();
    gang_rate_with(bank, flows, scratch, &mut touched)
}

/// [`gang_rate`] with the touched-port list also caller-provided, so a
/// scheduling round that tests many CoFlows allocates nothing at all.
/// `touched` may hold garbage on entry; it is cleared here.
pub fn gang_rate_with(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    scratch: &mut Vec<u32>,
    touched: &mut Vec<PortId>,
) -> Rate {
    debug_assert!(scratch.iter().all(|&c| c == 0), "scratch not zeroed");
    scratch.resize(bank.num_ports(), 0);
    if flows.is_empty() {
        return Rate::ZERO;
    }
    touched.clear();
    for f in flows {
        for p in [f.src, f.dst] {
            if scratch[p.index()] == 0 {
                touched.push(p);
            }
            scratch[p.index()] += 1;
        }
    }
    // Bulk read off the remaining slab: claim = remaining / own-flow
    // count, min over touched ports (`Rate::div_even` is plain floor
    // division, inlined here on the raw u64s).
    let rem = bank.remaining_slab();
    let mut rate = u64::MAX;
    for &p in touched.iter() {
        let claim = rem[p.index()] / scratch[p.index()] as u64;
        rate = rate.min(claim);
    }
    for &p in touched.iter() {
        scratch[p.index()] = 0;
    }
    Rate(rate)
}

/// Allocates `rate` to every flow of a gang-admitted CoFlow, drawing
/// down the bank. The caller obtains `rate` from [`gang_rate`] first;
/// the two are split so the admission test stays side-effect free.
pub fn gang_allocate(bank: &mut PortBank, flows: &[FlowEndpoints], rate: Rate) {
    if rate.is_zero() {
        return;
    }
    for f in flows {
        bank.allocate(f.src, rate);
        bank.allocate(f.dst, rate);
    }
}

/// Greedy per-flow filling: walks `flows` in order and gives each the
/// minimum of its ports' remaining capacity (possibly zero), drawing
/// down the bank. Returns the assigned rates, parallel to `flows`.
///
/// This is Saath's work-conservation step (the order encodes the missed
/// CoFlows' priority) and, when fed flows in (queue, CoFlow-arrival,
/// flow-id) order, Aalo's uncoordinated per-port FIFO allocation.
pub fn greedy_fill(bank: &mut PortBank, flows: &[FlowEndpoints]) -> Vec<Rate> {
    let mut out = Vec::with_capacity(flows.len());
    greedy_fill_into(bank, flows, &mut out);
    out
}

/// [`greedy_fill`] writing into a caller-provided buffer (cleared
/// first), for allocation-free scheduling rounds.
pub fn greedy_fill_into(bank: &mut PortBank, flows: &[FlowEndpoints], out: &mut Vec<Rate>) {
    out.clear();
    for f in flows {
        let r = bank.remaining(f.src).min(bank.remaining(f.dst));
        if !r.is_zero() {
            bank.allocate(f.src, r);
            bank.allocate(f.dst, r);
        }
        out.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use saath_simcore::NodeId;

    fn fe(flow: u32, src: u32, dst_node: u32, n: usize) -> FlowEndpoints {
        FlowEndpoints {
            flow: FlowId(flow),
            src: PortId::uplink(NodeId(src)),
            dst: PortId::downlink(NodeId(dst_node), n),
        }
    }

    #[test]
    fn gang_rate_single_flow_takes_bottleneck() {
        let mut bank = PortBank::uniform(2, Rate(100));
        bank.allocate(PortId::downlink(NodeId(1), 2), Rate(70));
        let flows = [fe(0, 0, 1, 2)];
        let mut scratch = vec![0; bank.num_ports()];
        assert_eq!(gang_rate(&bank, &flows, &mut scratch), Rate(30));
        // scratch is returned zeroed.
        assert!(scratch.iter().all(|&c| c == 0));
    }

    #[test]
    fn gang_rate_shares_a_common_port() {
        // Two flows of one CoFlow leaving the same uplink: each can get
        // at most half of it.
        let bank = PortBank::uniform(3, Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let mut scratch = vec![0; bank.num_ports()];
        assert_eq!(gang_rate(&bank, &flows, &mut scratch), Rate(50));
    }

    #[test]
    fn gang_rate_zero_when_any_port_full() {
        let mut bank = PortBank::uniform(3, Rate(100));
        bank.allocate(PortId::downlink(NodeId(2), 3), Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let mut scratch = vec![0; bank.num_ports()];
        assert_eq!(
            gang_rate(&bank, &flows, &mut scratch),
            Rate::ZERO,
            "all-or-none must reject when one port is exhausted"
        );
    }

    #[test]
    fn gang_allocate_draws_every_port() {
        let mut bank = PortBank::uniform(3, Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let mut scratch = vec![0; bank.num_ports()];
        let r = gang_rate(&bank, &flows, &mut scratch);
        gang_allocate(&mut bank, &flows, r);
        assert_eq!(bank.remaining(PortId::uplink(NodeId(0))), Rate(0));
        assert_eq!(bank.remaining(PortId::downlink(NodeId(1), 3)), Rate(50));
        assert_eq!(bank.remaining(PortId::downlink(NodeId(2), 3)), Rate(50));
    }

    #[test]
    fn greedy_fill_order_matters() {
        // Both flows want the same uplink; first in order gets it all.
        let mut bank = PortBank::uniform(3, Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let rates = greedy_fill(&mut bank, &flows);
        assert_eq!(rates, vec![Rate(100), Rate(0)]);
    }

    #[test]
    fn greedy_fill_independent_flows_all_win() {
        let mut bank = PortBank::uniform(4, Rate(100));
        let flows = [fe(0, 0, 2, 4), fe(1, 1, 3, 4)];
        let rates = greedy_fill(&mut bank, &flows);
        assert_eq!(rates, vec![Rate(100), Rate(100)]);
    }

    proptest! {
        /// Gang allocation never over-subscribes any port, for random
        /// CoFlows over a small cluster.
        #[test]
        fn gang_never_oversubscribes(
            pairs in proptest::collection::vec((0u32..6, 0u32..6), 1..20),
            cap in 1u64..1_000_000,
        ) {
            let n = 6;
            let mut bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = pairs
                .iter()
                .enumerate()
                .map(|(i, (s, d))| fe(i as u32, *s, *d, n))
                .collect();
            let mut scratch = vec![0; bank.num_ports()];
            let r = gang_rate(&bank, &flows, &mut scratch);
            gang_allocate(&mut bank, &flows, r);
            // allocate() debug-asserts on oversubscription; reaching here
            // means all draws fit. Also check global conservation:
            let alloc = bank.total_allocated().as_u64();
            prop_assert_eq!(alloc, r.as_u64() * 2 * flows.len() as u64);
        }

        /// Greedy filling is work conserving: after the pass, for every
        /// flow either the flow got a positive rate or one of its ports
        /// is exhausted.
        #[test]
        fn greedy_is_work_conserving(
            pairs in proptest::collection::vec((0u32..5, 0u32..5), 1..30),
            cap in 1u64..1_000_000,
        ) {
            let n = 5;
            let mut bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = pairs
                .iter()
                .enumerate()
                .map(|(i, (s, d))| fe(i as u32, *s, *d, n))
                .collect();
            let rates = greedy_fill(&mut bank, &flows);
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(
                    !r.is_zero()
                        || !bank.has_spare(f.src)
                        || !bank.has_spare(f.dst),
                    "flow starved while both its ports have spare capacity"
                );
            }
        }
    }
}
