//! Per-port capacity accounting for one scheduling round.

use saath_simcore::{NodeId, PortId, Rate};
use serde::{Deserialize, Serialize};

/// The fabric's contended resources: `2N` ports (uplink `0..N`,
/// downlink `N..2N`) with a capacity each, plus a *remaining* vector
/// that one scheduling round draws down as it admits flows.
///
/// Capacities can differ per port — that is how straggling or degraded
/// nodes are modelled (§4.3): a straggler's ports keep working at a
/// fraction of their nominal rate.
///
/// Internally both vectors are raw `u64` slabs (structure-of-arrays)
/// rather than `Vec<Rate>`: the allocators' inner loops
/// ([`max_min_fair_into`], MADD, gang rates) bulk-read them, and plain
/// integer slabs let those loops autovectorize. `Rate` is a transparent
/// `u64` newtype, so the serialized form is unchanged. The typed
/// [`Rate`] API stays the only mutation path.
///
/// [`max_min_fair_into`]: crate::maxmin::max_min_fair_into
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortBank {
    num_nodes: usize,
    nominal: Rate,
    capacity: Vec<u64>,
    remaining: Vec<u64>,
}

impl PortBank {
    /// A bank of `2 * num_nodes` ports, all at `uniform` capacity.
    pub fn uniform(num_nodes: usize, uniform: Rate) -> PortBank {
        PortBank {
            num_nodes,
            nominal: uniform,
            capacity: vec![uniform.as_u64(); 2 * num_nodes],
            remaining: vec![uniform.as_u64(); 2 * num_nodes],
        }
    }

    /// The configured un-degraded per-port rate the bank was built
    /// with. Unlike [`PortBank::capacity`], this never changes when a
    /// port is degraded (stragglers, failures), so it is the right
    /// normalizer for queue-residence horizons and other quantities
    /// that must not wobble with transient slowdowns.
    pub fn nominal_rate(&self) -> Rate {
        self.nominal
    }

    /// Number of nodes (half the number of ports).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of ports (`2 * num_nodes`).
    pub fn num_ports(&self) -> usize {
        self.capacity.len()
    }

    /// Nominal capacity of a port.
    pub fn capacity(&self, p: PortId) -> Rate {
        Rate(self.capacity[p.index()])
    }

    /// Sets the nominal capacity of a port (straggler/failure
    /// injection). Also clamps the remaining capacity down to the new
    /// value so an in-flight round cannot over-allocate.
    pub fn set_capacity(&mut self, p: PortId, cap: Rate) {
        self.capacity[p.index()] = cap.as_u64();
        if self.remaining[p.index()] > cap.as_u64() {
            self.remaining[p.index()] = cap.as_u64();
        }
    }

    /// Scales both ports of `node` by `num/den` (e.g. a 10× straggler is
    /// `scale_node(n, 1, 10)`). Restore with `scale_node(n, 1, 1)` after
    /// resetting capacity via [`PortBank::set_node_capacity`].
    pub fn scale_node(&mut self, node: NodeId, num: u64, den: u64) {
        let up = PortId::uplink(node);
        let down = PortId::downlink(node, self.num_nodes);
        let new_up = Rate(self.capacity[up.index()]).mul_ratio(num, den);
        let new_down = Rate(self.capacity[down.index()]).mul_ratio(num, den);
        self.set_capacity(up, new_up);
        self.set_capacity(down, new_down);
    }

    /// Sets both ports of `node` to `cap`.
    pub fn set_node_capacity(&mut self, node: NodeId, cap: Rate) {
        self.set_capacity(PortId::uplink(node), cap);
        self.set_capacity(PortId::downlink(node, self.num_nodes), cap);
    }

    /// Remaining (un-allocated) capacity of a port in this round.
    pub fn remaining(&self, p: PortId) -> Rate {
        Rate(self.remaining[p.index()])
    }

    /// The full remaining-capacity slab, indexed by raw port index —
    /// the read-only bulk view the allocator inner loops iterate so
    /// they vectorize. Units are `Rate` (bytes/second).
    pub fn remaining_slab(&self) -> &[u64] {
        &self.remaining
    }

    /// The full capacity slab, indexed by raw port index (bulk
    /// read-only view; units are `Rate`).
    pub fn capacity_slab(&self) -> &[u64] {
        &self.capacity
    }

    /// Whether the port still has any spare capacity.
    pub fn has_spare(&self, p: PortId) -> bool {
        self.remaining[p.index()] != 0
    }

    /// Draws `r` from the port's remaining capacity.
    ///
    /// # Panics
    /// Panics in debug builds on over-allocation — schedulers must never
    /// hand out more than a port has.
    pub fn allocate(&mut self, p: PortId, r: Rate) {
        debug_assert!(
            r.as_u64() <= self.remaining[p.index()],
            "over-allocating {r} on {p} (remaining {})",
            Rate(self.remaining[p.index()])
        );
        self.remaining[p.index()] = self.remaining[p.index()].saturating_sub(r.as_u64());
    }

    /// Starts a new scheduling round: remaining := capacity everywhere.
    pub fn reset_round(&mut self) {
        self.remaining.copy_from_slice(&self.capacity);
    }

    /// Makes `self` a fresh-round copy of `other` (capacities copied,
    /// remaining reset to capacity) while reusing `self`'s buffers —
    /// the allocation-free equivalent of `other.clone()` +
    /// `reset_round()` for schedulers that probe hypothetical rounds.
    pub fn clone_reset_from(&mut self, other: &PortBank) {
        self.num_nodes = other.num_nodes;
        self.nominal = other.nominal;
        self.capacity.clone_from(&other.capacity);
        self.remaining.clone_from(&other.capacity);
    }

    /// Sum of allocated rate across all ports (diagnostics).
    pub fn total_allocated(&self) -> Rate {
        let cap: u64 = self.capacity.iter().sum();
        let rem: u64 = self.remaining.iter().sum();
        Rate(cap - rem)
    }

    /// Ports fully allocated this round: remaining zero on nonzero
    /// capacity (dead ports don't count as saturated). Diagnostics for
    /// the telemetry round trace.
    pub fn saturated_ports(&self) -> usize {
        self.capacity
            .iter()
            .zip(self.remaining.iter())
            .filter(|(&c, &r)| c != 0 && r == 0)
            .count()
    }

    /// Fabric utilization this round in permille (allocated / capacity
    /// × 1000), 0 on an all-dead fabric. Integer-valued so the round
    /// trace stays byte-deterministic.
    pub fn utilization_permille(&self) -> u64 {
        let cap: u64 = self.capacity.iter().sum();
        if cap == 0 {
            return 0;
        }
        let rem: u64 = self.remaining.iter().sum();
        (cap - rem) * 1000 / cap
    }

    /// Uplink port of `node`.
    pub fn uplink(&self, node: NodeId) -> PortId {
        PortId::uplink(node)
    }

    /// Downlink port of `node`.
    pub fn downlink(&self, node: NodeId) -> PortId {
        PortId::downlink(node, self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bank() {
        let bank = PortBank::uniform(150, Rate::gbps(1));
        assert_eq!(bank.num_nodes(), 150);
        assert_eq!(bank.num_ports(), 300);
        assert_eq!(bank.capacity(PortId(0)), Rate::gbps(1));
        assert_eq!(bank.remaining(PortId(299)), Rate::gbps(1));
    }

    #[test]
    fn allocate_and_reset() {
        let mut bank = PortBank::uniform(2, Rate(100));
        let p = bank.uplink(NodeId(0));
        bank.allocate(p, Rate(60));
        assert_eq!(bank.remaining(p), Rate(40));
        assert!(bank.has_spare(p));
        bank.allocate(p, Rate(40));
        assert!(!bank.has_spare(p));
        assert_eq!(bank.total_allocated(), Rate(100));
        assert_eq!(bank.saturated_ports(), 1);
        assert_eq!(bank.utilization_permille(), 250); // 100 of 400 total
        bank.reset_round();
        assert_eq!(bank.remaining(p), Rate(100));
        assert_eq!(bank.saturated_ports(), 0);
        assert_eq!(bank.utilization_permille(), 0);
    }

    /// The raw slabs expose exactly what the typed API reports, in
    /// port-index order.
    #[test]
    fn slabs_mirror_typed_accessors() {
        let mut bank = PortBank::uniform(2, Rate(100));
        bank.set_capacity(PortId(2), Rate(40));
        bank.allocate(PortId(0), Rate(25));
        assert_eq!(bank.capacity_slab(), &[100, 100, 40, 100]);
        assert_eq!(bank.remaining_slab(), &[75, 100, 40, 100]);
        for p in 0..bank.num_ports() {
            let p = PortId(p as u32);
            assert_eq!(bank.capacity(p).as_u64(), bank.capacity_slab()[p.index()]);
            assert_eq!(bank.remaining(p).as_u64(), bank.remaining_slab()[p.index()]);
        }
    }

    #[test]
    fn dead_ports_are_not_saturated() {
        let mut bank = PortBank::uniform(1, Rate(100));
        bank.set_capacity(PortId(0), Rate(0));
        assert_eq!(bank.saturated_ports(), 0);
        bank.set_capacity(PortId(1), Rate(0));
        assert_eq!(bank.utilization_permille(), 0, "all-dead fabric");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-allocating")]
    fn over_allocation_is_caught() {
        let mut bank = PortBank::uniform(1, Rate(10));
        bank.allocate(PortId(0), Rate(11));
    }

    #[test]
    fn nominal_rate_survives_degradation() {
        let mut bank = PortBank::uniform(2, Rate(1000));
        assert_eq!(bank.nominal_rate(), Rate(1000));
        bank.scale_node(NodeId(0), 1, 10);
        assert_eq!(bank.capacity(PortId(0)), Rate(100));
        assert_eq!(
            bank.nominal_rate(),
            Rate(1000),
            "nominal must not follow degradation"
        );
    }

    #[test]
    fn clone_reset_reuses_buffers() {
        let mut src = PortBank::uniform(3, Rate(500));
        src.allocate(PortId(0), Rate(200));
        src.scale_node(NodeId(1), 1, 5);
        let mut dst = PortBank::uniform(1, Rate(1));
        dst.clone_reset_from(&src);
        assert_eq!(dst.num_nodes(), 3);
        assert_eq!(dst.nominal_rate(), Rate(500));
        // Capacities copied, remaining reset to capacity (not to src's
        // partially-drawn remaining).
        assert_eq!(dst.capacity(PortId(1)), Rate(100));
        assert_eq!(dst.remaining(PortId(0)), Rate(500));
        assert_eq!(dst.remaining(PortId(1)), Rate(100));
    }

    #[test]
    fn straggler_scaling_clamps_remaining() {
        let mut bank = PortBank::uniform(2, Rate(1000));
        let up = bank.uplink(NodeId(1));
        bank.allocate(up, Rate(100)); // 900 remaining
        bank.scale_node(NodeId(1), 1, 10); // capacity now 100
        assert_eq!(bank.capacity(up), Rate(100));
        assert_eq!(
            bank.remaining(up),
            Rate(100),
            "remaining clamped to new cap"
        );
        // Downlink scaled too.
        assert_eq!(bank.capacity(bank.downlink(NodeId(1))), Rate(100));
        // Other node untouched.
        assert_eq!(bank.capacity(bank.uplink(NodeId(0))), Rate(1000));
        // Recovery.
        bank.set_node_capacity(NodeId(1), Rate(1000));
        bank.reset_round();
        assert_eq!(bank.remaining(up), Rate(1000));
    }
}
