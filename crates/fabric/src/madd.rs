//! MADD — Minimum Allocation for Desired Duration (Varys, SIGCOMM'14).
//!
//! The clairvoyant baselines (Varys/SEBF, SCF, SRTF, LWTF) know every
//! flow's remaining volume. Given a CoFlow, MADD computes the *slowest
//! completion it cannot avoid* — the bottleneck time Γ — and then gives
//! each flow exactly the rate that finishes it at Γ. Any faster would
//! waste bandwidth other CoFlows could use; any slower would inflate the
//! CCT.

use crate::gang::FlowEndpoints;
use crate::port::PortBank;
use saath_simcore::{Bytes, Duration, PortId, Rate};

/// Reusable per-port accumulation for [`bottleneck_time_with`] /
/// [`madd_rates_with`]: a port-indexed `u64` slab plus the list of
/// ports touched (in first-touch order), replacing the former
/// `Vec<(PortId, u64)>` whose `find()` made every accumulation
/// `O(ports touched)`. The slab is zeroed on entry and exit, so one
/// scratch serves any number of CoFlows per round.
#[derive(Default)]
pub struct MaddScratch {
    slab: Vec<u64>,
    touched: Vec<PortId>,
}

/// The bottleneck completion time Γ of a CoFlow under the *remaining*
/// port capacities in `bank`: the maximum over ports of
/// `total remaining bytes at the port / remaining capacity`.
///
/// Returns [`Duration::INFINITE`] if any touched port has zero capacity
/// left, and [`Duration::ZERO`] for an empty or fully-drained CoFlow.
///
/// `remaining[i]` is the remaining volume of `flows[i]`.
pub fn bottleneck_time(bank: &PortBank, flows: &[FlowEndpoints], remaining: &[Bytes]) -> Duration {
    bottleneck_time_with(bank, flows, remaining, &mut MaddScratch::default())
}

/// [`bottleneck_time`] with caller-provided scratch — the
/// allocation-free form for hot scheduling loops.
pub fn bottleneck_time_with(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
    scratch: &mut MaddScratch,
) -> Duration {
    debug_assert_eq!(flows.len(), remaining.len());
    accumulate(scratch, bank.num_ports(), flows, |i| remaining[i].as_u64());
    let caps = bank.remaining_slab();
    let mut gamma = Duration::ZERO;
    for &p in &scratch.touched {
        let d = scratch.slab[p.index()];
        let t = saath_simcore::units::transfer_time(Bytes(d), Rate(caps[p.index()]));
        if t > gamma {
            gamma = t;
        }
    }
    drain(scratch);
    gamma
}

/// Accumulates `value(i)` onto both ports of `flows[i]` in the scratch
/// slab; ports enter `touched` on their first nonzero contribution, so
/// zero-valued flows (drained, zero-rate) never surface — exactly the
/// entries the Γ/clamp scans would skip anyway.
fn accumulate(
    scratch: &mut MaddScratch,
    num_ports: usize,
    flows: &[FlowEndpoints],
    value: impl Fn(usize) -> u64,
) {
    if scratch.slab.len() < num_ports {
        scratch.slab.resize(num_ports, 0);
    }
    debug_assert!(scratch.slab.iter().all(|&d| d == 0), "slab not drained");
    scratch.touched.clear();
    for (i, f) in flows.iter().enumerate() {
        let v = value(i);
        if v == 0 {
            continue;
        }
        for p in [f.src, f.dst] {
            let d = &mut scratch.slab[p.index()];
            if *d == 0 {
                scratch.touched.push(p);
            }
            *d += v;
        }
    }
}

/// Re-zeroes the slab via the touched list (cheaper than a full clear).
fn drain(scratch: &mut MaddScratch) {
    for &p in &scratch.touched {
        scratch.slab[p.index()] = 0;
    }
}

/// Per-flow MADD rates: each flow gets `remaining / Γ`, so every flow
/// (and hence the CoFlow) finishes exactly at the bottleneck time.
///
/// Returns `None` when Γ is infinite (a needed port has no capacity —
/// the caller should skip the CoFlow this round). Flows with zero
/// remaining volume get `Rate::ZERO`. Rates are rounded *up* so integer
/// truncation can never stretch the CoFlow past Γ; the ≤1 B/s overshoot
/// per flow is absorbed by the caller clamping to port capacity.
pub fn madd_rates(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
) -> Option<Vec<Rate>> {
    let mut rates = Vec::with_capacity(flows.len());
    madd_rates_into(bank, flows, remaining, &mut rates).then_some(rates)
}

/// [`madd_rates`] writing into a caller-provided buffer (cleared first),
/// for allocation-free scheduling rounds. Returns `false` (leaving `out`
/// empty) when Γ is infinite — the `None` case of [`madd_rates`].
pub fn madd_rates_into(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
    out: &mut Vec<Rate>,
) -> bool {
    madd_rates_with(bank, flows, remaining, &mut MaddScratch::default(), out)
}

/// [`madd_rates_into`] with caller-provided scratch — the fully
/// allocation-free form for hot scheduling loops.
pub fn madd_rates_with(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
    scratch: &mut MaddScratch,
    out: &mut Vec<Rate>,
) -> bool {
    out.clear();
    let gamma = bottleneck_time_with(bank, flows, remaining, scratch);
    if gamma.is_infinite() {
        return false;
    }
    if gamma == Duration::ZERO {
        out.resize(flows.len(), Rate::ZERO);
        return true;
    }
    let gamma_ns = gamma.as_nanos() as u128;
    let rates = out;
    for rem in remaining {
        let num = rem.as_u64() as u128 * 1_000_000_000u128;
        let r = num.div_ceil(gamma_ns);
        rates.push(Rate(r.min(u64::MAX as u128) as u64));
    }
    // Clamp to feasibility: rounding up each flow can oversubscribe a
    // port by a few B/s; scale the whole CoFlow's rates down to the most
    // violated port's ratio if needed (keeps rates proportional, which
    // is the MADD invariant). Only ports with positive accumulated rate
    // can violate, so the slab's nonzero-only touched list suffices;
    // among equally-violated ports the chosen (cap, used) pair may
    // differ from the historical sparse scan, but equal ratios floor to
    // equal scaled rates, keeping the output byte-identical.
    accumulate(scratch, bank.num_ports(), flows, |i| rates[i].as_u64());
    let caps = bank.remaining_slab();
    let mut scale: Option<(u64, u64)> = None; // (num, den) = smallest cap/used ratio
    for &p in &scratch.touched {
        let u = scratch.slab[p.index()];
        let cap = caps[p.index()];
        if u > cap {
            let tighter = match scale {
                None => true,
                Some((n0, d0)) => (cap as u128) * (d0 as u128) < (n0 as u128) * (u as u128),
            };
            if tighter {
                scale = Some((cap, u));
            }
        }
    }
    drain(scratch);
    if let Some((num, den)) = scale {
        for r in rates.iter_mut() {
            *r = r.mul_ratio(num, den);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use saath_simcore::{FlowId, NodeId};

    fn fe(flow: u32, src: u32, dst_node: u32, n: usize) -> FlowEndpoints {
        FlowEndpoints {
            flow: FlowId(flow),
            src: PortId::uplink(NodeId(src)),
            dst: PortId::downlink(NodeId(dst_node), n),
        }
    }

    #[test]
    fn bottleneck_is_the_busiest_port() {
        // Two flows out of node 0 (100 B total on its uplink) into two
        // receivers (50 B each): uplink is the bottleneck.
        let bank = PortBank::uniform(3, Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let remaining = [Bytes(50), Bytes(50)];
        assert_eq!(
            bottleneck_time(&bank, &flows, &remaining),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn madd_finishes_all_flows_together() {
        let bank = PortBank::uniform(3, Rate(100));
        // Uneven flows: 80 B and 20 B sharing the uplink (Γ = 1 s).
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let remaining = [Bytes(80), Bytes(20)];
        let rates = madd_rates(&bank, &flows, &remaining).unwrap();
        assert_eq!(rates, vec![Rate(80), Rate(20)]);
        // Both complete at exactly Γ.
        let t0 = saath_simcore::units::transfer_time(remaining[0], rates[0]);
        let t1 = saath_simcore::units::transfer_time(remaining[1], rates[1]);
        assert_eq!(t0, t1);
    }

    #[test]
    fn madd_rejects_on_dead_port() {
        let mut bank = PortBank::uniform(2, Rate(100));
        bank.allocate(PortId::uplink(NodeId(0)), Rate(100));
        let flows = [fe(0, 0, 1, 2)];
        assert!(madd_rates(&bank, &flows, &[Bytes(10)]).is_none());
        assert!(bottleneck_time(&bank, &flows, &[Bytes(10)]).is_infinite());
    }

    #[test]
    fn drained_coflow_is_trivial() {
        let bank = PortBank::uniform(2, Rate(100));
        let flows = [fe(0, 0, 1, 2)];
        assert_eq!(bottleneck_time(&bank, &flows, &[Bytes(0)]), Duration::ZERO);
        assert_eq!(
            madd_rates(&bank, &flows, &[Bytes(0)]).unwrap(),
            vec![Rate::ZERO]
        );
    }

    proptest! {
        /// MADD rates are always feasible after clamping and all nonzero
        /// flows finish within Γ (+1ns rounding).
        #[test]
        fn madd_feasible_and_synchronized(
            spec in proptest::collection::vec((0u32..4, 0u32..4, 1u64..1_000_000), 1..12),
            cap in 1_000u64..1_000_000_000,
        ) {
            let n = 4;
            let mut bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = spec
                .iter()
                .enumerate()
                .map(|(i, (s, d, _))| fe(i as u32, *s, *d, n))
                .collect();
            let remaining: Vec<Bytes> = spec.iter().map(|(_, _, b)| Bytes(*b)).collect();
            let rates = madd_rates(&bank, &flows, &remaining).unwrap();
            // Feasibility: applying the rates must not trip the
            // over-allocation debug assertion.
            for (f, r) in flows.iter().zip(&rates) {
                if !r.is_zero() {
                    bank.allocate(f.src, *r);
                    bank.allocate(f.dst, *r);
                }
            }
        }
    }
}
