//! MADD — Minimum Allocation for Desired Duration (Varys, SIGCOMM'14).
//!
//! The clairvoyant baselines (Varys/SEBF, SCF, SRTF, LWTF) know every
//! flow's remaining volume. Given a CoFlow, MADD computes the *slowest
//! completion it cannot avoid* — the bottleneck time Γ — and then gives
//! each flow exactly the rate that finishes it at Γ. Any faster would
//! waste bandwidth other CoFlows could use; any slower would inflate the
//! CCT.

use crate::gang::FlowEndpoints;
use crate::port::PortBank;
use saath_simcore::{Bytes, Duration, PortId, Rate};

/// The bottleneck completion time Γ of a CoFlow under the *remaining*
/// port capacities in `bank`: the maximum over ports of
/// `total remaining bytes at the port / remaining capacity`.
///
/// Returns [`Duration::INFINITE`] if any touched port has zero capacity
/// left, and [`Duration::ZERO`] for an empty or fully-drained CoFlow.
///
/// `remaining[i]` is the remaining volume of `flows[i]`.
pub fn bottleneck_time(bank: &PortBank, flows: &[FlowEndpoints], remaining: &[Bytes]) -> Duration {
    debug_assert_eq!(flows.len(), remaining.len());
    // Accumulate per-port demand sparsely.
    let mut demand: Vec<(PortId, u64)> = Vec::with_capacity(flows.len() * 2);
    for (f, rem) in flows.iter().zip(remaining) {
        for p in [f.src, f.dst] {
            match demand.iter_mut().find(|(q, _)| *q == p) {
                Some((_, d)) => *d += rem.as_u64(),
                None => demand.push((p, rem.as_u64())),
            }
        }
    }
    let mut gamma = Duration::ZERO;
    for (p, d) in demand {
        if d == 0 {
            continue;
        }
        let cap = bank.remaining(p);
        let t = saath_simcore::units::transfer_time(Bytes(d), cap);
        if t > gamma {
            gamma = t;
        }
    }
    gamma
}

/// Per-flow MADD rates: each flow gets `remaining / Γ`, so every flow
/// (and hence the CoFlow) finishes exactly at the bottleneck time.
///
/// Returns `None` when Γ is infinite (a needed port has no capacity —
/// the caller should skip the CoFlow this round). Flows with zero
/// remaining volume get `Rate::ZERO`. Rates are rounded *up* so integer
/// truncation can never stretch the CoFlow past Γ; the ≤1 B/s overshoot
/// per flow is absorbed by the caller clamping to port capacity.
pub fn madd_rates(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
) -> Option<Vec<Rate>> {
    let mut rates = Vec::with_capacity(flows.len());
    madd_rates_into(bank, flows, remaining, &mut rates).then_some(rates)
}

/// [`madd_rates`] writing into a caller-provided buffer (cleared first),
/// for allocation-free scheduling rounds. Returns `false` (leaving `out`
/// empty) when Γ is infinite — the `None` case of [`madd_rates`].
pub fn madd_rates_into(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    remaining: &[Bytes],
    out: &mut Vec<Rate>,
) -> bool {
    out.clear();
    let gamma = bottleneck_time(bank, flows, remaining);
    if gamma.is_infinite() {
        return false;
    }
    if gamma == Duration::ZERO {
        out.resize(flows.len(), Rate::ZERO);
        return true;
    }
    let gamma_ns = gamma.as_nanos() as u128;
    let rates = out;
    for rem in remaining {
        let num = rem.as_u64() as u128 * 1_000_000_000u128;
        let r = num.div_ceil(gamma_ns);
        rates.push(Rate(r.min(u64::MAX as u128) as u64));
    }
    // Clamp to feasibility: rounding up each flow can oversubscribe a
    // port by a few B/s; scale the whole CoFlow's rates down to the most
    // violated port's ratio if needed (keeps rates proportional, which
    // is the MADD invariant).
    let mut used: Vec<(PortId, u64)> = Vec::new();
    for (f, r) in flows.iter().zip(rates.iter()) {
        for p in [f.src, f.dst] {
            match used.iter_mut().find(|(q, _)| *q == p) {
                Some((_, u)) => *u += r.as_u64(),
                None => used.push((p, r.as_u64())),
            }
        }
    }
    let mut scale: Option<(u64, u64)> = None; // (num, den) = smallest cap/used ratio
    for (p, u) in &used {
        let cap = bank.remaining(*p).as_u64();
        if *u > cap {
            let tighter = match scale {
                None => true,
                Some((n0, d0)) => (cap as u128) * (d0 as u128) < (n0 as u128) * (*u as u128),
            };
            if tighter {
                scale = Some((cap, *u));
            }
        }
    }
    if let Some((num, den)) = scale {
        for r in rates.iter_mut() {
            *r = r.mul_ratio(num, den);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use saath_simcore::{FlowId, NodeId};

    fn fe(flow: u32, src: u32, dst_node: u32, n: usize) -> FlowEndpoints {
        FlowEndpoints {
            flow: FlowId(flow),
            src: PortId::uplink(NodeId(src)),
            dst: PortId::downlink(NodeId(dst_node), n),
        }
    }

    #[test]
    fn bottleneck_is_the_busiest_port() {
        // Two flows out of node 0 (100 B total on its uplink) into two
        // receivers (50 B each): uplink is the bottleneck.
        let bank = PortBank::uniform(3, Rate(100));
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let remaining = [Bytes(50), Bytes(50)];
        assert_eq!(
            bottleneck_time(&bank, &flows, &remaining),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn madd_finishes_all_flows_together() {
        let bank = PortBank::uniform(3, Rate(100));
        // Uneven flows: 80 B and 20 B sharing the uplink (Γ = 1 s).
        let flows = [fe(0, 0, 1, 3), fe(1, 0, 2, 3)];
        let remaining = [Bytes(80), Bytes(20)];
        let rates = madd_rates(&bank, &flows, &remaining).unwrap();
        assert_eq!(rates, vec![Rate(80), Rate(20)]);
        // Both complete at exactly Γ.
        let t0 = saath_simcore::units::transfer_time(remaining[0], rates[0]);
        let t1 = saath_simcore::units::transfer_time(remaining[1], rates[1]);
        assert_eq!(t0, t1);
    }

    #[test]
    fn madd_rejects_on_dead_port() {
        let mut bank = PortBank::uniform(2, Rate(100));
        bank.allocate(PortId::uplink(NodeId(0)), Rate(100));
        let flows = [fe(0, 0, 1, 2)];
        assert!(madd_rates(&bank, &flows, &[Bytes(10)]).is_none());
        assert!(bottleneck_time(&bank, &flows, &[Bytes(10)]).is_infinite());
    }

    #[test]
    fn drained_coflow_is_trivial() {
        let bank = PortBank::uniform(2, Rate(100));
        let flows = [fe(0, 0, 1, 2)];
        assert_eq!(bottleneck_time(&bank, &flows, &[Bytes(0)]), Duration::ZERO);
        assert_eq!(
            madd_rates(&bank, &flows, &[Bytes(0)]).unwrap(),
            vec![Rate::ZERO]
        );
    }

    proptest! {
        /// MADD rates are always feasible after clamping and all nonzero
        /// flows finish within Γ (+1ns rounding).
        #[test]
        fn madd_feasible_and_synchronized(
            spec in proptest::collection::vec((0u32..4, 0u32..4, 1u64..1_000_000), 1..12),
            cap in 1_000u64..1_000_000_000,
        ) {
            let n = 4;
            let mut bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = spec
                .iter()
                .enumerate()
                .map(|(i, (s, d, _))| fe(i as u32, *s, *d, n))
                .collect();
            let remaining: Vec<Bytes> = spec.iter().map(|(_, _, b)| Bytes(*b)).collect();
            let rates = madd_rates(&bank, &flows, &remaining).unwrap();
            // Feasibility: applying the rates must not trip the
            // over-allocation debug assertion.
            for (f, r) in flows.iter().zip(&rates) {
                if !r.is_zero() {
                    bank.allocate(f.src, *r);
                    bank.allocate(f.dst, *r);
                }
            }
        }
    }
}
