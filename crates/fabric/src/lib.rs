//! # saath-fabric
//!
//! The network substrate of the Saath reproduction: a *big-switch*
//! model of a datacenter fabric, exactly as the paper (and Varys/Aalo
//! before it) assumes — full bisection bandwidth in the core, congestion
//! only at the `2N` edge ports (each node's uplink and downlink,
//! 1 Gbps each by default).
//!
//! Everything a CoFlow scheduler does to the network reduces to *rate
//! allocation*: deciding, for every flow, how many bytes per second it
//! may move, subject to per-port capacity. This crate provides the
//! allocation primitives the schedulers share:
//!
//! * [`PortBank`] — per-port capacity and remaining-capacity accounting
//!   for one scheduling round;
//! * [`gang`] — Saath's equal-rate *all-or-none* CoFlow allocation
//!   (§4.2-D2: "the rate of the slowest flow is assigned to all the
//!   flows") and the greedy per-flow allocation used for work
//!   conservation and for Aalo's independent ports;
//! * [`madd`] — Varys' Minimum-Allocation-for-Desired-Duration for
//!   clairvoyant baselines;
//! * [`maxmin`] — global max-min fairness (progressive filling), the
//!   UC-TCP baseline's "what TCP would converge to" approximation.
//!
//! All primitives are pure functions over integer rates — no wall-clock,
//! no I/O — so they are trivially testable and deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gang;
pub mod madd;
pub mod maxmin;
pub mod port;

pub use gang::{
    gang_allocate, gang_rate, gang_rate_with, greedy_fill, greedy_fill_into, FlowEndpoints,
};
pub use madd::{
    bottleneck_time, bottleneck_time_with, madd_rates, madd_rates_into, madd_rates_with,
    MaddScratch,
};
pub use maxmin::{max_min_fair, max_min_fair_into, MaxMinScratch};
pub use port::PortBank;
