//! Global max-min fair rate allocation (progressive filling).
//!
//! This is the classic water-filling construction: grow every
//! still-unfixed flow's rate in lockstep; whenever a port saturates, fix
//! all of its flows at the current level; repeat. The fixed point is the
//! unique max-min fair allocation, which is the standard fluid
//! approximation of what long-lived TCP flows converge to — the paper's
//! **UC-TCP** baseline ("all the flows are scheduled upon arrival as per
//! TCP", §6.1).
//!
//! The implementation is the exact combinatorial version, not the
//! iterative approximation: each round picks the port with the smallest
//! `remaining capacity / unfixed flow count`, fixes its flows, and
//! charges the other ports. With `P` ports and `F` flows it runs in
//! `O(P² + P·F)`, which is tiny at the paper's scale (≤300 ports).
//!
//! ## Tie-breaking (load-bearing, do not change casually)
//!
//! When several ports share the smallest fair share, the **lowest port
//! index wins**: the scan walks ports in ascending index and `s <=
//! share` keeps the incumbent. With integer division the bottleneck
//! choice *can* change the final rates (fixing at port `a` first may
//! leave a one-quantum-larger share at port `b` than the other order
//! would), so this rule is part of the byte-determinism contract —
//! locked by `ties_pick_the_lowest_port_index` below.

use crate::gang::FlowEndpoints;
use crate::port::PortBank;
use saath_simcore::Rate;

/// Reusable per-port/per-flow bookkeeping for [`max_min_fair_into`], so
/// repeated rounds allocate nothing.
///
/// Structure-of-arrays layout: flat `u32` src/dst port indices per flow
/// plus `u64` capacity/count slabs per port, and a compacted list of
/// still-unfixed flow indices — the fix-and-charge loop touches only
/// dense integer arrays, so it autovectorizes and skips already-fixed
/// flows entirely (the former `Vec<bool>` sidecar made every pass
/// re-scan all flows).
#[derive(Default)]
pub struct MaxMinScratch {
    cap: Vec<u64>,
    count: Vec<u64>,
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    /// Indices of flows not yet fixed, in ascending order (retain keeps
    /// relative order, so the charge sequence matches the historical
    /// all-flows scan exactly).
    active: Vec<u32>,
    /// Cumulative progressive-filling iterations (one per bottleneck
    /// fixed) across every call that used this scratch. Only maintained
    /// with the `telemetry` feature; always 0 otherwise.
    pub iterations: u64,
}

/// Computes the max-min fair rate for every flow subject to the
/// *remaining* capacities in `bank`. Does not draw down the bank; the
/// caller applies the result if desired.
///
/// Flows whose src or dst port has zero capacity get `Rate::ZERO`.
pub fn max_min_fair(bank: &PortBank, flows: &[FlowEndpoints]) -> Vec<Rate> {
    let mut rates = Vec::new();
    max_min_fair_into(bank, flows, &mut MaxMinScratch::default(), &mut rates);
    rates
}

/// [`max_min_fair`] writing into a caller-provided buffer (cleared
/// first) with all bookkeeping drawn from `scratch` — the
/// allocation-free form for hot scheduling loops.
pub fn max_min_fair_into(
    bank: &PortBank,
    flows: &[FlowEndpoints],
    scratch: &mut MaxMinScratch,
    rates: &mut Vec<Rate>,
) {
    let np = bank.num_ports();
    rates.clear();
    rates.resize(flows.len(), Rate::ZERO);
    if flows.is_empty() {
        return;
    }

    // Per-port and per-flow slabs (see MaxMinScratch).
    let MaxMinScratch {
        cap,
        count,
        srcs,
        dsts,
        active,
        iterations,
    } = scratch;
    cap.clear();
    cap.extend_from_slice(bank.remaining_slab());
    count.clear();
    count.resize(np, 0);
    srcs.clear();
    dsts.clear();
    for f in flows {
        srcs.push(f.src.index() as u32);
        dsts.push(f.dst.index() as u32);
    }
    for (&s, &d) in srcs.iter().zip(dsts.iter()) {
        count[s as usize] += 1;
        count[d as usize] += 1;
    }
    active.clear();
    active.extend(0..flows.len() as u32);

    loop {
        // Find the tightest port among those with unfixed flows.
        // Ascending scan; ties keep the lowest index (module docs).
        let mut best: Option<(usize, u64)> = None; // (port, fair share)
        for p in 0..np {
            if count[p] == 0 {
                continue;
            }
            let share = cap[p] / count[p];
            match best {
                Some((_, s)) if s <= share => {}
                _ => best = Some((p, share)),
            }
        }
        let Some((bottleneck, level)) = best else {
            break;
        };
        if saath_telemetry::enabled() {
            *iterations += 1;
        }

        // Fix every unfixed flow crossing the bottleneck at `level`,
        // charge its ports, and compact it out of the active list.
        let b = bottleneck as u32;
        active.retain(|&i| {
            let (s, d) = (srcs[i as usize], dsts[i as usize]);
            if s != b && d != b {
                return true;
            }
            rates[i as usize] = Rate(level);
            for p in [s as usize, d as usize] {
                // Explicit saturation: the bottleneck's own remainder
                // (integer division) must floor at zero, not wrap.
                cap[p] = cap[p].saturating_sub(level);
                count[p] -= 1;
            }
            false
        });
        // The bottleneck may retain a sub-`count` remainder from integer
        // division; it has no unfixed flows left, so it is inert now.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use saath_simcore::{FlowId, NodeId, PortId};

    fn fe(flow: u32, src: u32, dst_node: u32, n: usize) -> FlowEndpoints {
        FlowEndpoints {
            flow: FlowId(flow),
            src: PortId::uplink(NodeId(src)),
            dst: PortId::downlink(NodeId(dst_node), n),
        }
    }

    #[test]
    fn equal_shares_on_one_port() {
        let bank = PortBank::uniform(4, Rate(90));
        // Three flows out of node 0 to distinct receivers.
        let flows = [fe(0, 0, 1, 4), fe(1, 0, 2, 4), fe(2, 0, 3, 4)];
        let rates = max_min_fair(&bank, &flows);
        assert_eq!(rates, vec![Rate(30); 3]);
    }

    #[test]
    fn classic_two_bottleneck_example() {
        // Textbook: flows A (0→2), B (0→3), C (1→3). Port up0 carries
        // A,B; port down3 carries B,C. cap=100 everywhere.
        // Max-min: A=50, B=50, C=50. (Both contended ports split evenly.)
        let bank = PortBank::uniform(4, Rate(100));
        let flows = [fe(0, 0, 2, 4), fe(1, 0, 3, 4), fe(2, 1, 3, 4)];
        let rates = max_min_fair(&bank, &flows);
        assert_eq!(rates, vec![Rate(50), Rate(50), Rate(50)]);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // down2 capacity 30 carrying one flow; up0 capacity 100 carrying
        // two. Flow A (0→2) is limited to 30 by its receiver; flow B
        // (0→3) then gets the rest of up0 = 70.
        let mut bank = PortBank::uniform(4, Rate(100));
        bank.set_capacity(PortId::downlink(NodeId(2), 4), Rate(30));
        let flows = [fe(0, 0, 2, 4), fe(1, 0, 3, 4)];
        let rates = max_min_fair(&bank, &flows);
        assert_eq!(rates, vec![Rate(30), Rate(70)]);
    }

    /// Locks the documented tie-break: when two ports offer the same
    /// integer fair share, the lowest-indexed one is fixed first. The
    /// choice is observable — here up0 (101 across A, B → share 50)
    /// ties with down2 (50 for A alone → share 50). Fixing up0 first
    /// pins B at 50; fixing down2 first would leave B the 51 remainder.
    #[test]
    fn ties_pick_the_lowest_port_index() {
        let mut bank = PortBank::uniform(4, Rate(101));
        bank.set_capacity(PortId::downlink(NodeId(2), 4), Rate(50));
        let flows = [fe(0, 0, 2, 4), fe(1, 0, 3, 4)];
        let rates = max_min_fair(&bank, &flows);
        assert_eq!(
            rates,
            vec![Rate(50), Rate(50)],
            "tie must resolve to port 0 (up0), fixing both flows at 50"
        );
    }

    #[test]
    fn dead_port_starves_only_its_flows() {
        let mut bank = PortBank::uniform(4, Rate(100));
        bank.set_capacity(PortId::uplink(NodeId(0)), Rate(0));
        let flows = [fe(0, 0, 2, 4), fe(1, 1, 3, 4)];
        let rates = max_min_fair(&bank, &flows);
        assert_eq!(rates[0], Rate::ZERO);
        assert_eq!(rates[1], Rate(100));
    }

    proptest! {
        /// The allocation is always feasible, and work-conserving up to
        /// integer-division remainders: every flow with a zero rate has
        /// a saturated-or-dead port (within one remainder quantum).
        #[test]
        fn feasible_and_nearly_work_conserving(
            spec in proptest::collection::vec((0u32..5, 0u32..5), 1..25),
            cap in 100u64..1_000_000,
        ) {
            let n = 5;
            let bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = spec
                .iter()
                .enumerate()
                .map(|(i, (s, d))| fe(i as u32, *s, *d, n))
                .collect();
            let rates = max_min_fair(&bank, &flows);

            // Feasibility per port.
            let mut used = vec![0u64; bank.num_ports()];
            for (f, r) in flows.iter().zip(&rates) {
                used[f.src.index()] += r.as_u64();
                used[f.dst.index()] += r.as_u64();
            }
            for (p, &u) in used.iter().enumerate() {
                prop_assert!(u <= cap, "port {p} oversubscribed: {u} > {cap}");
            }

            // No flow gets zero unless a port it crosses is (nearly) full.
            let nflows = flows.len() as u64;
            for (f, r) in flows.iter().zip(&rates) {
                if r.is_zero() {
                    let src_left = cap - used[f.src.index()];
                    let dst_left = cap - used[f.dst.index()];
                    prop_assert!(
                        src_left.min(dst_left) <= nflows,
                        "zero-rate flow with {src_left}/{dst_left} spare"
                    );
                }
            }
        }

        /// Max-min dominance: no flow can be raised without lowering a
        /// flow with an equal-or-smaller rate — checked via the standard
        /// bottleneck characterization: every flow has a port that is
        /// (nearly) saturated where the flow's rate is maximal.
        #[test]
        fn bottleneck_characterization(
            spec in proptest::collection::vec((0u32..4, 0u32..4), 1..16),
        ) {
            let n = 4;
            let cap = 10_000u64;
            let bank = PortBank::uniform(n, Rate(cap));
            let flows: Vec<FlowEndpoints> = spec
                .iter()
                .enumerate()
                .map(|(i, (s, d))| fe(i as u32, *s, *d, n))
                .collect();
            let rates = max_min_fair(&bank, &flows);

            let mut used = vec![0u64; bank.num_ports()];
            let mut maxrate = vec![0u64; bank.num_ports()];
            for (f, r) in flows.iter().zip(&rates) {
                for p in [f.src.index(), f.dst.index()] {
                    used[p] += r.as_u64();
                    maxrate[p] = maxrate[p].max(r.as_u64());
                }
            }
            let slack = flows.len() as u64; // integer-division tolerance
            for (f, r) in flows.iter().zip(&rates) {
                let has_bottleneck = [f.src.index(), f.dst.index()].iter().any(|&p| {
                    cap - used[p] <= slack && r.as_u64() + slack >= maxrate[p]
                });
                prop_assert!(
                    has_bottleneck,
                    "flow {:?} rate {} lacks a bottleneck port",
                    f.flow, r
                );
            }
        }
    }
}
